"""Core library: the paper's contribution.

Energy-aware placement of Precision-Beekeeping services between edge devices
(smart beehives) and a cloud server:

* calibrated task/routine models of the deployed system (§IV, Tables I/II);
* the client / server / allocator large-scale simulation model (§VI) with
  synchronized time slots and the three loss models;
* scenario comparison and crossover analysis (edge vs edge+cloud).

Typical use::

    from repro.core import (EDGE_SVM, EDGE_CLOUD_SVM, ServerProfile,
                            simulate_fleet, sweep_clients, find_crossover)

    result = simulate_fleet(n_clients=400, scenario=EDGE_CLOUD_SVM,
                            max_parallel=35)
    print(result.total_energy_per_client)
"""

from repro.core.calibration import (
    PaperConstants,
    PAPER,
    CYCLE_SECONDS,
    table1_rows,
    table2_rows,
)
from repro.core.tasks import Task, TaskSequence
from repro.core.client import ClientProfile, client_cycle_energy, average_power_for_period
from repro.core.server import ServerProfile, SlotPlan
from repro.core.routines import (
    edge_scenario_tasks,
    edge_cloud_client_tasks,
    data_collection_routine,
    EDGE_SVM,
    EDGE_CNN,
    EDGE_CLOUD_SVM,
    EDGE_CLOUD_CNN,
    Scenario,
)
from repro.core.losses import LossConfig, SaturationPenalty, TransferTimePenalty, ClientLoss
from repro.core.allocator import Allocator, Allocation, ServerAssignment, FirstFitPolicy, RoundRobinPolicy, BalancedPolicy
from repro.core.simulate import FleetResult, simulate_fleet
from repro.core.sweep import sweep_clients, SweepResult
from repro.core.crossover import find_crossover, crossover_report, CrossoverReport
from repro.core.adaptive import (
    AdaptiveDutyCycle,
    DutyCyclePolicy,
    AdaptiveRunResult,
    simulate_adaptive_week,
)
from repro.core.planner import PlacementPlan, PlacementOption, plan_placement, breakeven_grid_weight
from repro.core.sizing import BatterySizing, minimum_battery_for_uptime, servers_for_fleet
from repro.core.mixed import ClientGroup, MixedFleetResult, simulate_mixed_fleet

__all__ = [
    "PaperConstants",
    "PAPER",
    "CYCLE_SECONDS",
    "table1_rows",
    "table2_rows",
    "Task",
    "TaskSequence",
    "ClientProfile",
    "client_cycle_energy",
    "average_power_for_period",
    "ServerProfile",
    "SlotPlan",
    "edge_scenario_tasks",
    "edge_cloud_client_tasks",
    "data_collection_routine",
    "EDGE_SVM",
    "EDGE_CNN",
    "EDGE_CLOUD_SVM",
    "EDGE_CLOUD_CNN",
    "Scenario",
    "LossConfig",
    "SaturationPenalty",
    "TransferTimePenalty",
    "ClientLoss",
    "Allocator",
    "Allocation",
    "ServerAssignment",
    "FirstFitPolicy",
    "RoundRobinPolicy",
    "BalancedPolicy",
    "FleetResult",
    "simulate_fleet",
    "sweep_clients",
    "SweepResult",
    "find_crossover",
    "crossover_report",
    "CrossoverReport",
    "AdaptiveDutyCycle",
    "DutyCyclePolicy",
    "AdaptiveRunResult",
    "simulate_adaptive_week",
    "PlacementPlan",
    "PlacementOption",
    "plan_placement",
    "breakeven_grid_weight",
    "BatterySizing",
    "minimum_battery_for_uptime",
    "servers_for_fleet",
    "ClientGroup",
    "MixedFleetResult",
    "simulate_mixed_fleet",
]
