"""Placement planner: choose between scenarios for a given deployment.

The paper's conclusion calls for intelligence that can "choose between a
set of scenarios".  :func:`plan_placement` evaluates every candidate
(edge vs edge+cloud × service model × admission cap) for a fleet under a
loss configuration and ranks them by the deployment's objective:

* ``"total"`` — minimize end-to-end joules per client (grid + solar alike);
* ``"edge"`` — minimize the *solar-side* joules per client (the paper's
  argument that a solar joule is worth more than a grid joule, §VI-B);
* ``"weighted"`` — minimize ``edge + grid_weight × server`` joules, making
  the solar-vs-grid exchange rate explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.core.losses import LossConfig
from repro.core.routines import Scenario, make_scenario
from repro.core.simulate import FleetResult, simulate_fleet
from repro.util.rng import SeedLike
from repro.util.tabulate import render_table
from repro.util.validation import check_non_negative

#: Objectives understood by the planner.
OBJECTIVES = ("total", "edge", "weighted")


@dataclass(frozen=True)
class PlacementOption:
    """One evaluated candidate."""

    scenario: Scenario
    result: FleetResult
    objective_value: float

    @property
    def label(self) -> str:
        if self.scenario.is_edge_only:
            return self.scenario.name
        return f"{self.scenario.name} @{self.scenario.server.max_parallel}/slot"


@dataclass(frozen=True)
class PlacementPlan:
    """Ranked candidates; ``best`` is the recommendation."""

    objective: str
    n_clients: int
    options: Tuple[PlacementOption, ...]

    @property
    def best(self) -> PlacementOption:
        return self.options[0]

    def render(self) -> str:
        rows = []
        for opt in self.options:
            r = opt.result
            rows.append((
                opt.label,
                r.n_servers,
                r.edge_energy_per_client,
                r.server_energy_per_client,
                r.total_energy_per_client,
                opt.objective_value,
            ))
        return render_table(
            ["Placement", "Servers", "Edge J/cl", "Server J/cl", "Total J/cl", "Objective"],
            rows,
            formats=[None, "d", ".1f", ".1f", ".1f", ".2f"],
            title=f"Placement plan for {self.n_clients} clients (objective: {self.objective})",
        )


def _objective(result: FleetResult, objective: str, grid_weight: float) -> float:
    if objective == "total":
        return result.total_energy_per_client
    if objective == "edge":
        return result.edge_energy_per_client
    if objective == "weighted":
        return result.edge_energy_per_client + grid_weight * result.server_energy_per_client
    raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")


def plan_placement(
    n_clients: int,
    objective: str = "total",
    grid_weight: float = 0.25,
    models: Sequence[str] = ("svm", "cnn"),
    max_parallels: Sequence[int] = (10, 20, 35, 50),
    losses: Optional[LossConfig] = None,
    period: float = CYCLE_SECONDS,
    seed: SeedLike = 0,
    constants: PaperConstants = PAPER,
) -> PlacementPlan:
    """Evaluate all placements for a fleet and rank by the objective.

    ``grid_weight`` (only used by the ``"weighted"`` objective) is the
    exchange rate of a grid joule against a solar joule: 0 means server
    energy is free, 1 recovers the ``"total"`` objective.

    Ties break toward fewer servers, then toward the edge-only scenario
    (no infrastructure to operate).
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    check_non_negative(grid_weight, "grid_weight")

    candidates: List[Scenario] = []
    for model in models:
        candidates.append(make_scenario("edge", model, constants=constants))
        for parallel in max_parallels:
            candidates.append(
                make_scenario("edge+cloud", model, max_parallel=parallel, constants=constants)
            )

    options = []
    for scenario in candidates:
        result = simulate_fleet(
            n_clients, scenario, period=period, losses=losses, seed=seed
        )
        options.append(
            PlacementOption(scenario, result, _objective(result, objective, grid_weight))
        )
    options.sort(
        key=lambda o: (o.objective_value, o.result.n_servers, not o.scenario.is_edge_only)
    )
    return PlacementPlan(objective=objective, n_clients=n_clients, options=tuple(options))


def breakeven_grid_weight(
    n_clients: int,
    model: str = "svm",
    max_parallel: int = 35,
    losses: Optional[LossConfig] = None,
    seed: SeedLike = 0,
    constants: PaperConstants = PAPER,
) -> float:
    """Grid-joule weight at which edge-only and edge+cloud tie.

    Below the returned weight the weighted objective prefers edge+cloud
    (solar joules are precious); above it, edge-only.  Returns ``inf`` when
    edge+cloud never wins (its edge share alone exceeds edge-only).
    """
    edge = simulate_fleet(n_clients, make_scenario("edge", model, constants=constants),
                          losses=losses, seed=seed)
    cloud = simulate_fleet(
        n_clients,
        make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants),
        losses=losses,
        seed=seed,
    )
    edge_saving = edge.edge_energy_per_client - cloud.edge_energy_per_client
    if edge_saving <= 0:
        return 0.0
    if cloud.server_energy_per_client == 0:
        return float("inf")
    return edge_saving / cloud.server_energy_per_client
