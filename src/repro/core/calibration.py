"""Paper-measured constants — the single source of calibration truth.

Every number in this module is either copied verbatim from the paper
(Tables I/II, §IV statistics, §V/§VI parameters) or derived from those
numbers by the stated arithmetic.  All other modules refer to these
constants rather than re-declaring literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.energy.power import TaskPower
from repro.util.units import MINUTE

#: §V/§VI cycle length: 5 minutes.
CYCLE_SECONDS: float = 300.0


@dataclass(frozen=True)
class RoutineStats:
    """§IV calibration of one data-collection routine (319 routines measured)."""

    duration_s: float = 89.0  # 1 min 29 s boot→shutdown
    duration_std_s: float = 3.5
    power_w: float = 2.14
    power_std_w: float = 0.009
    energy_j: float = 190.1

    @property
    def implied_energy_j(self) -> float:
        """duration × power — agrees with ``energy_j`` to <0.1 %."""
        return self.duration_s * self.power_w


@dataclass(frozen=True)
class PaperConstants:
    """All §IV–§VI calibration values."""

    # -- §IV: Pi 3b+ duty cycle ------------------------------------------
    routine: RoutineStats = field(default_factory=RoutineStats)
    #: §IV quotes the rounded 0.62 W; Tables I/II imply 0.625 W
    #: (111.6 J / 178.5 s and 131.9 J / 211.1 s), which makes the table
    #: totals reproduce exactly, so we carry the un-rounded value.
    sleep_watts: float = 0.625
    #: Extra per-wake-up energy (GPIO signalling + boot current surge) that
    #: the routine window does not capture; chosen so the 5-minute average
    #: power matches Figure 3's 1.19 W: 1.19*300 − 190.1 − 0.625*211 ≈ 35 J.
    wake_surge_j: float = 35.0
    #: Wake-up periods compared in Figure 3 (seconds).
    wakeup_periods_s: Tuple[float, ...] = (5 * MINUTE, 10 * MINUTE, 15 * MINUTE,
                                           30 * MINUTE, 60 * MINUTE, 120 * MINUTE)
    fig3_power_at_5min_w: float = 1.19

    # -- §V: service execution at the edge --------------------------------
    svm_edge_s: float = 46.1
    svm_edge_j: float = 98.9
    cnn_edge_s: float = 37.6
    cnn_edge_j: float = 94.8
    cnn_image_size: int = 100  # optimal N×N input (Figure 5)
    cnn_accuracy_at_100: float = 0.99

    # -- Tables I/II: shared edge task rows --------------------------------
    collect_s: float = 64.0
    collect_j: float = 131.8
    send_results_s: float = 1.5
    send_results_j: float = 3.0
    shutdown_s: float = 9.9
    shutdown_j: float = 21.0
    send_audio_s: float = 15.0
    send_audio_j: float = 37.3

    # -- Table II: cloud server -------------------------------------------
    server_idle_w: float = 44.6  # 9415 J / 211.1 s
    server_receive_w: float = 68.8  # 1032 J / 15.0 s
    svm_cloud_s: float = 0.1
    svm_cloud_j: float = 6.3
    cnn_cloud_s: float = 1.0
    cnn_cloud_j: float = 108.0

    # -- §VI: simulation parameters ----------------------------------------
    #: Handshake/guard time appended to each time slot.  1.5 s reproduces the
    #: paper's slot packing: 18 SVM slots per 5-minute cycle, so a server
    #: with 35 clients/slot saturates at 630 clients exactly as in Fig. 7b.
    slot_guard_s: float = 1.5
    default_max_parallel: int = 10
    #: Loss model A: penalty threshold margin below max_parallel, and the
    #: per-extra-client energy penalty rate.
    loss_a_margin: int = 5
    loss_a_rate: float = 0.10
    #: Loss model B: extra transfer seconds per synchronized client.
    loss_b_extra_s_per_client: float = 1.5
    #: Loss model C: Gaussian client loss (mean fraction, absolute std).
    loss_c_mean_fraction: float = 0.10
    loss_c_std: float = 2.0

    # -- Paper-reported §VI outcomes (used by EXPERIMENTS.md checks) -------
    edge_cloud_client_j: float = 322.0
    server_full_per_client_j: float = 116.0
    best_total_per_client_j: float = 438.0
    tipping_clients_per_slot: int = 26
    crossover_clients_at_35: int = 406
    max_gap_j_at_35: float = 12.5
    max_gap_clients_at_35: int = 630
    permanent_crossover_at_35: int = 803
    loss_a_server_converged_j: float = 186.0
    loss_b_server_min_j: float = 212.0

    # -- Table totals (for regression checks) ------------------------------
    edge_svm_total_j: float = 366.3
    edge_cnn_total_j: float = 367.5
    cloud_svm_total_j: float = 13744.3
    cloud_cnn_total_j: float = 13806.0


#: The canonical constant set.
PAPER = PaperConstants()


def _tp(name: str, seconds: float, joules: float) -> TaskPower:
    return TaskPower(name=name, duration=seconds, measured_energy=joules)


def table1_rows(model: str = "svm", constants: PaperConstants = PAPER) -> List[TaskPower]:
    """Table I rows (edge scenario) for ``model`` in {'svm', 'cnn'}.

    The sleep row is the residual of the 300 s cycle at ``sleep_watts``; the
    explicit energies match the published rows to 0.1 J.
    """
    model = model.lower()
    if model == "svm":
        service = _tp("queen_detection_svm", constants.svm_edge_s, constants.svm_edge_j)
        sleep = _tp("sleep", 178.5, 111.6)
    elif model == "cnn":
        service = _tp("queen_detection_cnn", constants.cnn_edge_s, constants.cnn_edge_j)
        sleep = _tp("sleep", 187.0, 116.9)
    else:
        raise ValueError(f"model must be 'svm' or 'cnn', got {model!r}")
    return [
        sleep,
        _tp("wake_collect", constants.collect_s, constants.collect_j),
        service,
        _tp("send_results", constants.send_results_s, constants.send_results_j),
        _tp("shutdown", constants.shutdown_s, constants.shutdown_j),
    ]


def table2_rows(model: str = "svm", constants: PaperConstants = PAPER) -> Dict[str, List[TaskPower]]:
    """Table II rows (edge+cloud scenario): ``{'edge': [...], 'cloud': [...]}``.

    The edge-side shutdown is split in two in the paper (the service finishes
    on the server while the Pi is still shutting down); we keep the split so
    row-level comparisons line up.
    """
    model = model.lower()
    if model == "svm":
        service = _tp("queen_detection_svm", constants.svm_cloud_s, constants.svm_cloud_j)
        edge_shutdown_a = _tp("shutdown_a", 0.1, 0.2)
        edge_shutdown_b = _tp("shutdown_b", 9.8, 20.8)
        cloud_tail_idle = _tp("idle_tail", 9.8, 437.0)
    elif model == "cnn":
        service = _tp("queen_detection_cnn", constants.cnn_cloud_s, constants.cnn_cloud_j)
        edge_shutdown_a = _tp("shutdown_a", 1.0, 2.1)
        edge_shutdown_b = _tp("shutdown_b", 8.9, 18.9)
        cloud_tail_idle = _tp("idle_tail", 8.9, 397.0)
    else:
        raise ValueError(f"model must be 'svm' or 'cnn', got {model!r}")
    edge = [
        _tp("sleep", 211.1, 131.9),
        _tp("wake_collect", constants.collect_s, constants.collect_j),
        _tp("send_audio", constants.send_audio_s, constants.send_audio_j),
        edge_shutdown_a,
        edge_shutdown_b,
    ]
    cloud = [
        _tp("idle_sleepwin", 211.1, 9415.0),
        _tp("idle_collectwin", 64.0, 2854.0),
        _tp("receive_audio", constants.send_audio_s, 1032.0),
        service,
        cloud_tail_idle,
    ]
    return {"edge": edge, "cloud": cloud}
