"""Scenario definitions: edge vs edge+cloud, SVM vs CNN.

A :class:`Scenario` bundles a client profile with (for edge+cloud) a server
profile; the four paper scenarios (``EDGE_SVM``, ``EDGE_CNN``,
``EDGE_CLOUD_SVM``, ``EDGE_CLOUD_CNN``) are built from the Table I/II
calibration and exposed as module constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants, table1_rows, table2_rows
from repro.core.client import ClientProfile
from repro.core.server import ServerProfile, paper_server
from repro.core.tasks import TaskSequence
from repro.energy.power import TaskPower


def edge_scenario_tasks(model: str = "svm", constants: PaperConstants = PAPER) -> TaskSequence:
    """Active (non-sleep) task sequence of the edge scenario (Table I)."""
    rows = [t for t in table1_rows(model, constants) if t.name != "sleep"]
    return TaskSequence(f"Edge ({model.upper()})", rows)


def edge_cloud_client_tasks(model: str = "svm", constants: PaperConstants = PAPER) -> TaskSequence:
    """Active task sequence of the edge side of the edge+cloud scenario (Table II)."""
    rows = [t for t in table2_rows(model, constants)["edge"] if t.name != "sleep"]
    return TaskSequence(f"Edge+Cloud ({model.upper()}) / edge side", rows)


def data_collection_routine(constants: PaperConstants = PAPER) -> TaskSequence:
    """§IV's bare data-collection routine (no intelligent service).

    One aggregate task matching the measured 89 s / 190.1 J routine, used by
    the Figure 2/3 experiments.
    """
    r = constants.routine
    return TaskSequence(
        "Data collection routine",
        [TaskPower("collect_and_transfer", r.duration_s, measured_energy=r.energy_j)],
    )


@dataclass(frozen=True)
class Scenario:
    """A placement choice: where the queen-detection service runs.

    ``server is None`` denotes the pure-edge scenario.
    """

    name: str
    client: ClientProfile
    server: Optional[ServerProfile] = None

    @property
    def is_edge_only(self) -> bool:
        return self.server is None

    @property
    def client_cycle_energy(self) -> float:
        """Joules one client spends per cycle."""
        return self.client.cycle_energy

    def with_max_parallel(self, max_parallel: int) -> "Scenario":
        """Copy with the server's per-slot cap changed (edge+cloud only)."""
        if self.server is None:
            raise ValueError(f"scenario {self.name!r} has no server")
        return Scenario(self.name, self.client, self.server.with_max_parallel(max_parallel))


def _edge_client(model: str, constants: PaperConstants) -> ClientProfile:
    return ClientProfile(
        name=f"edge-{model}",
        active_tasks=edge_scenario_tasks(model, constants),
        sleep_watts=constants.sleep_watts,
        period=CYCLE_SECONDS,
        wake_surge_j=0.0,  # Tables I/II account the full cycle explicitly
    )


def _edge_cloud_client(model: str, constants: PaperConstants) -> ClientProfile:
    return ClientProfile(
        name=f"edge-cloud-{model}",
        active_tasks=edge_cloud_client_tasks(model, constants),
        sleep_watts=constants.sleep_watts,
        period=CYCLE_SECONDS,
        wake_surge_j=0.0,
    )


def make_scenario(
    placement: str,
    model: str = "svm",
    max_parallel: Optional[int] = None,
    constants: PaperConstants = PAPER,
) -> Scenario:
    """Factory: ``placement`` in {'edge', 'edge+cloud'}, ``model`` in {'svm', 'cnn'}."""
    placement = placement.lower()
    if placement == "edge":
        return Scenario(f"Edge ({model.upper()})", _edge_client(model, constants))
    if placement in ("edge+cloud", "edge_cloud", "edgecloud"):
        return Scenario(
            f"Edge+Cloud ({model.upper()})",
            _edge_cloud_client(model, constants),
            paper_server(model, max_parallel=max_parallel, constants=constants),
        )
    raise ValueError(f"placement must be 'edge' or 'edge+cloud', got {placement!r}")


#: The four scenarios of Tables I/II.
EDGE_SVM = make_scenario("edge", "svm")
EDGE_CNN = make_scenario("edge", "cnn")
EDGE_CLOUD_SVM = make_scenario("edge+cloud", "svm")
EDGE_CLOUD_CNN = make_scenario("edge+cloud", "cnn")


def all_scenarios() -> List[Scenario]:
    """The four paper scenarios."""
    return [EDGE_SVM, EDGE_CNN, EDGE_CLOUD_SVM, EDGE_CLOUD_CNN]
