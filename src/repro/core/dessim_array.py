"""Structure-of-arrays per-client DES kernel (bit-identical fast path).

:func:`repro.core.dessim.run_des_fleet` advances one generator per client;
at 100k clients the interpreter overhead of those processes dominates the
run.  This module replays the *same float operations in the same order* with
the fleet laid out as parallel NumPy arrays — one entry per client for the
engine-local clock, the device clock, and each ledger category — advancing
the whole wake cohort one cycle at a time.  IEEE-754 arithmetic is
elementwise identical between ``numpy.float64`` and Python floats, so the
resulting ledgers are **bit-identical** to the scalar kernel's, not merely
close (golden-pinned and hypothesis-tested).

The exact op replay, per client and cycle (matching ``client_proc`` +
:class:`repro.devices.device.DutyCycledDevice`):

1. ``wake = fl(cycle·period) + offset``; if ``delay = wake − t_eng > 0`` the
   engine clock advances to ``fl(t_eng + delay)`` (a timeout fires — *not*
   ``wake`` itself, which can differ in the last ulp).
2. ``sleep_until`` charges ``sleep_watts · (t_eng − t_dev)``; a zero
   residency charges nothing (and never creates the ledger key).
3. Each task ``i`` charges ``power_i · (fl(t + dur_i) − t)`` — the
   offset-dependent rounded interval, not ``power_i · dur_i``.
4. The end-of-routine timeout advances the engine clock to
   ``fl(t_eng + fl(t_end − t_eng))``.
5. ``finish`` charges the final sleep residency up to ``offset + horizon``.

Adding a masked-out zero charge is exact (``x + 0.0 == x`` for the
non-negative accumulators), so the kernel accumulates unconditionally and
tracks a per-category "ever charged" mask purely to reproduce which keys
exist in each ledger.

Servers re-run the shared :func:`repro.core.dessim.server_process` on a
dedicated engine: a server only waits on its own timeouts, so its ledger is
float-identical whether or not client processes share the engine.  That
leaves the kernel O(n_clients · n_cycles · n_tasks) array ops + O(servers)
simulated processes.

When cohort aggregation applies (it usually does — offsets repeat per
slot), prefer ``run_des_fleet(cohort=True)``: it is exact *and* O(slots).
This kernel wins when per-client state diverges (jittered outages,
heterogeneous routines) and cohorts collapse to singletons — the regime
ROADMAP item 2 targets.
"""

from __future__ import annotations

import time as _time
from typing import Optional

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.core.dessim import DesFleetResult, fleet_wake_offsets, server_process
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.des.engine import Engine
from repro.devices.device import AlwaysOnDevice, DeviceError
from repro.devices.specs import CLOUD_SERVER_I7_RTX2070, RASPBERRY_PI_3B_PLUS
from repro.energy.account import EnergyAccount


def _build_accounts(names, tot, dur, present, owner_ids, prefix):
    """Materialize :class:`EnergyAccount` ledgers from SoA columns.

    ``names`` fixes the key insertion order (chronological first charge:
    tasks in routine order, then sleep — a category whose first-cycle
    residency rounds to zero stays zero forever, so this order is exact).
    ``owner_ids`` supplies the entity id behind each column row.  The
    common all-keys-present case builds each ledger from pre-exported row
    tuples at C speed; the rare sparse case filters per entity.
    """
    tot_cols = [tot[nm].tolist() for nm in names]
    dur_cols = [dur[nm].tolist() for nm in names]
    accounts = []
    append = accounts.append
    new = EnergyAccount.__new__
    if all(bool(present[nm].all()) for nm in names):
        for i, trow, drow in zip(owner_ids, zip(*tot_cols), zip(*dur_cols)):
            acc = new(EnergyAccount)
            acc.owner = "%s%d" % (prefix, i)
            acc._totals = dict(zip(names, trow))
            acc._durations = dict(zip(names, drow))
            acc._entries = None
            append(acc)
    else:
        pres_cols = [present[nm].tolist() for nm in names]
        for row, i in enumerate(owner_ids):
            acc = new(EnergyAccount)
            acc.owner = "%s%d" % (prefix, i)
            acc._totals = {
                nm: tot_cols[j][row] for j, nm in enumerate(names) if pres_cols[j][row]
            }
            acc._durations = {
                nm: dur_cols[j][row] for j, nm in enumerate(names) if pres_cols[j][row]
            }
            acc._entries = None
            append(acc)
    return accounts


def run_des_fleet_array(
    n_clients: int,
    scenario: Scenario,
    period: float = CYCLE_SECONDS,
    n_cycles: int = 1,
    losses: Optional[LossConfig] = None,
    policy=None,
    validate: Optional[bool] = None,
    obs=None,
) -> DesFleetResult:
    """SoA replay of :func:`repro.core.dessim.run_des_fleet` (ideal path).

    Returns a per-client :class:`DesFleetResult` whose ledgers are
    bit-identical to the scalar per-client kernel's — category totals,
    durations, and key order all match per client.  Clients with equal
    wake offsets share one ledger *object* (owned by the lowest member
    id), exactly like the cohort-expanded view; treat result ledgers as
    read-only.  Loss model C and fault injection are excluded exactly as
    in the scalar ideal path (faulty runs go through :mod:`repro.faults`).
    """
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    losses = losses or LossConfig.none()
    if losses.client_loss is not None:
        raise ValueError("run_des_fleet_array does not support loss model C (client dropout)")
    tasks = list(scenario.client.active_tasks)
    if scenario.client.active_tasks.total_duration > period:
        raise ValueError("client tasks exceed the period")

    t0_wall = _time.perf_counter()
    horizon = n_cycles * period
    allocation, sizing_extra, wake_offsets = fleet_wake_offsets(
        n_clients, scenario, period, losses, policy
    )

    n = n_clients
    spec = RASPBERRY_PI_3B_PLUS
    sleep_watts = spec.watts("sleep")
    names = list(dict.fromkeys(t.name for t in tasks))
    names.append("sleep")
    tot = {nm: np.zeros(n) for nm in names}
    dur = {nm: np.zeros(n) for nm in names}
    present = {nm: np.zeros(n, dtype=bool) for nm in names}

    if n:
        offsets = np.fromiter(
            (wake_offsets[i] for i in range(n)), dtype=np.float64, count=n
        )
        t_eng = np.zeros(n)  # per-client view of the engine clock
        t_dev = offsets.copy()  # device clock (last ledger transition)
        for cycle in range(n_cycles):
            wake = cycle * period + offsets
            delay = wake - t_eng
            np.add(t_eng, delay, out=t_eng, where=delay > 0.0)
            dt = t_eng - t_dev
            if dt.min() < 0.0:
                raise DeviceError("time went backwards: wake precedes device clock")
            tot["sleep"] += sleep_watts * dt
            dur["sleep"] += dt
            present["sleep"] |= dt > 0.0
            t = t_eng.copy()
            for task in tasks:
                t_new = t + task.duration
                step = t_new - t
                tot[task.name] += task.power * step
                dur[task.name] += step
                present[task.name] |= step > 0.0
                t = t_new
            t_dev = t
            t_eng = t_eng + (t - t_eng)
        ends = offsets + horizon
        dt = ends - t_dev
        if dt.min() < 0.0:
            raise DeviceError("time went backwards: finish precedes device clock")
        tot["sleep"] += sleep_watts * dt
        dur["sleep"] += dt
        present["sleep"] |= dt > 0.0

    # Clients sharing a wake offset have bitwise-identical trajectories
    # (the ledger is a pure function of the offset), so materialize one
    # representative ledger per distinct offset and share the object —
    # the same idiom as DesFleetResult.expand_client_accounts, with the
    # representative owning the lowest member id.  A fully-jittered fleet
    # (every offset distinct) degenerates to one account per client.
    if n:
        uniq, first_idx, inverse = np.unique(
            offsets, return_index=True, return_inverse=True
        )
        if len(uniq) < n:
            sel = first_idx
            reps = _build_accounts(
                names,
                {nm: tot[nm][sel] for nm in names},
                {nm: dur[nm][sel] for nm in names},
                {nm: present[nm][sel] for nm in names},
                first_idx.tolist(),
                "client-",
            )
            client_accounts = tuple(map(reps.__getitem__, inverse.tolist()))
        else:
            client_accounts = tuple(
                _build_accounts(names, tot, dur, present, range(n), "client-")
            )
    else:
        client_accounts = ()

    # Servers: a server's charge sequence is a pure function of its
    # occupancy profile (it only waits on its own timeouts), and first-fit
    # packing leaves at most two distinct profiles per fleet — so simulate
    # one representative per distinct profile and replicate its ledger.
    # This is the PR-2 cohort exactness argument applied server-side only;
    # the result still carries one account object per server.
    server_accounts = ()
    rep_devices = []
    engine = None
    if allocation is not None:
        engine = Engine(pool_timeouts=True)
        profile = scenario.server
        slot_dur = profile.slot_duration(sizing_extra)
        reps = {}
        for srv in allocation.servers:
            occ = tuple(srv.occupancies)
            if occ not in reps:
                dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070, name="")
                reps[occ] = dev
                rep_devices.append(dev)
                engine.process(server_process(
                    engine, dev, list(occ),
                    profile, slot_dur, losses, n_cycles, period,
                ))
        engine.run()
        for dev in rep_devices:
            dev.finish(horizon)
        accounts = []
        new = EnergyAccount.__new__
        for srv in allocation.servers:
            rep = reps[tuple(srv.occupancies)].account
            acc = new(EnergyAccount)
            acc.owner = f"server-{srv.server_index}"
            acc._totals = dict(rep._totals)
            acc._durations = dict(rep._durations)
            acc._entries = None
            accounts.append(acc)
        server_accounts = tuple(accounts)

    result = DesFleetResult(
        n_cycles=n_cycles,
        period=period,
        client_accounts=client_accounts,
        server_accounts=server_accounts,
        n_clients=n_clients,
    )
    elapsed = _time.perf_counter() - t0_wall

    from repro.obs.state import resolve as _resolve_obs

    obs_c = _resolve_obs(obs)
    if obs_c is not None:
        from repro.obs.attribution import attribute_accounts, record_run
        from repro.obs.ledger import PhaseLedger

        obs_c.metrics.counter("des.runs").inc()
        obs_c.metrics.counter("des.clients").inc(n_clients)
        obs_c.metrics.counter("des.cycles").inc(n_cycles)
        obs_c.metrics.histogram("kernel.des_array_s").record(elapsed)
        local = PhaseLedger()
        attribute_accounts(local, result.client_accounts, None)
        attribute_accounts(local, result.server_accounts, None)
        local.note_total(result.total_energy_j)
        record_run(
            obs_c, "des_fleet_array", 0.0, horizon, local,
            scenario=scenario.name, n_clients=n_clients,
            n_cycles=n_cycles, kernel="array",
        )

    from repro.validate.state import resolve

    if resolve(validate):
        from repro.validate.invariants import validate_des_run

        validate_des_run(
            result,
            scenario=scenario,
            engine=engine,
            allocation=allocation,
            devices=tuple(rep_devices),
            losses=losses,
            sizing_extra_s=sizing_extra,
            context={"scenario_name": scenario.name, "kernel": "array"},
        )
    return result


__all__ = ["run_des_fleet_array"]
