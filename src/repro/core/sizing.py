"""Deployment sizing tools: batteries, panels and server counts.

Answers the provisioning questions a deployment of the paper's system
raises: how large must the power bank be for a zero-outage week at a given
wake-up period and weather regime (bisection over the harvest simulation),
how large a panel balances a load year-round, and how many servers a fleet
needs under a loss configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.calibration import PAPER, PaperConstants
from repro.core.client import average_power_for_period
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.core.simulate import simulate_fleet
from repro.devices.specs import RASPBERRY_PI_ZERO_WH
from repro.energy.battery import Battery
from repro.energy.converter import DCDCConverter
from repro.energy.harvest import EnergyNode, HarvestSimulation
from repro.energy.solar import SolarPanel
from repro.sensing.weather import WeatherModel
from repro.util.rng import SeedLike
from repro.util.units import DAY, joules_to_wh
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class BatterySizing:
    """Result of :func:`minimum_battery_for_uptime`."""

    capacity_joules: float
    wakeup_period: float
    cloudiness: float
    target_uptime: float
    achieved_uptime: float

    @property
    def capacity_wh(self) -> float:
        return joules_to_wh(self.capacity_joules)

    @property
    def relative_to_paper_bank(self) -> float:
        """Multiple of the deployed 20 000 mAh power bank."""
        return self.capacity_joules / Battery.DEFAULT_CAPACITY


def _uptime_for_capacity(
    capacity: float,
    wakeup_period: float,
    cloudiness: float,
    duration: float,
    seed: SeedLike,
    constants: PaperConstants,
) -> float:
    weather = WeatherModel(cloudiness=cloudiness).generate(duration=duration, step=300.0, seed=seed)
    load = RASPBERRY_PI_ZERO_WH.power["idle"] + average_power_for_period(wakeup_period, constants)
    node = EnergyNode(
        panel=SolarPanel(),
        converter=DCDCConverter(),
        battery=Battery(capacity_joules=capacity, soc=0.8),
    )
    sim = HarvestSimulation(
        node,
        irradiance_fn=lambda t: float(weather.irradiance.at(t)),
        load_fn=lambda t, available: load,
        step=300.0,
    )
    return sim.run(duration).uptime_fraction


def minimum_battery_for_uptime(
    wakeup_period: float,
    cloudiness: float = 0.5,
    target_uptime: float = 1.0,
    duration: float = 7 * DAY,
    seed: SeedLike = 11,
    max_capacity: float = 20 * Battery.DEFAULT_CAPACITY,
    tolerance: float = 0.02,
    constants: PaperConstants = PAPER,
) -> BatterySizing:
    """Smallest battery (bisection, ±``tolerance`` relative) that sustains
    ``target_uptime`` over a simulated week of the given weather regime.

    Raises ``ValueError`` if even ``max_capacity`` cannot reach the target
    (the panel simply does not harvest enough for the load).
    """
    check_positive(wakeup_period, "wakeup_period")
    check_in_range(target_uptime, "target_uptime", 0.0, 1.0)

    def uptime(capacity: float) -> float:
        return _uptime_for_capacity(capacity, wakeup_period, cloudiness, duration, seed, constants)

    hi = max_capacity
    hi_uptime = uptime(hi)
    if hi_uptime < target_uptime:
        raise ValueError(
            f"even {joules_to_wh(hi):.0f} Wh cannot reach {target_uptime:.0%} uptime "
            f"(got {hi_uptime:.1%}) — the panel cannot carry this load"
        )
    lo = hi / 1024.0
    if uptime(lo) >= target_uptime:
        hi = lo
    else:
        while hi / lo > 1 + tolerance:
            mid = (lo * hi) ** 0.5  # geometric bisection over decades
            if uptime(mid) >= target_uptime:
                hi = mid
            else:
                lo = mid
    return BatterySizing(
        capacity_joules=hi,
        wakeup_period=wakeup_period,
        cloudiness=cloudiness,
        target_uptime=target_uptime,
        achieved_uptime=uptime(hi),
    )


def servers_for_fleet(
    n_clients: int,
    scenario: Scenario,
    losses: Optional[LossConfig] = None,
    seed: SeedLike = 0,
    safety_margin: int = 0,
) -> int:
    """Servers to provision for ``n_clients`` (plus an optional margin).

    With loss model C the requirement fluctuates wake-up by wake-up; this
    sizes for the *initial* fleet (every registered client must have a slot
    even on a zero-loss cycle), which upper-bounds the stochastic draws.
    """
    if scenario.is_edge_only:
        return 0
    no_dropout = None
    if losses is not None:
        # Size for the full fleet: strip the dropout component.
        no_dropout = LossConfig(saturation=losses.saturation, transfer=losses.transfer)
    result = simulate_fleet(n_clients, scenario, losses=no_dropout, seed=seed)
    return result.n_servers + max(safety_margin, 0)
