"""The allocator: distribute clients over servers and time slots.

The paper's allocator "takes a list of clients, creates servers based on
their features, allocates every client to one server, and links them to a
wake-up time slot", with a single filling policy: "filling a server with
clients by filling one slot up to its maximum after another" — our
:class:`FirstFitPolicy`.  :class:`RoundRobinPolicy` and
:class:`BalancedPolicy` are documented extensions used by the ablation
benchmarks (they interact with loss model A, which penalizes saturated
slots); best-fit, worst-fit, solar-budget, and swarm-scored join them via
the :class:`~repro.core.placement.PlacementPolicy` interface (see
``docs/POLICIES.md``).  All policy classes live in
:mod:`repro.core.placement` and are re-exported here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import LossConfig
from repro.core.placement import (
    BalancedPolicy,
    BestFitPolicy,
    FirstFitPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    SolarBudgetPolicy,
    SwarmScoredPolicy,
    WorstFitPolicy,
    resolve_policy,
)
from repro.core.server import ServerProfile, SlotPlan
from repro.validate.errors import InvariantViolation


@dataclass(frozen=True)
class ServerAssignment:
    """One server's slot occupancy: ``slots[i]`` lists client ids in slot i."""

    server_index: int
    slots: tuple  # tuple[tuple[int, ...], ...]

    @property
    def n_clients(self) -> int:
        return sum(len(s) for s in self.slots)

    @property
    def occupancies(self) -> List[int]:
        return [len(s) for s in self.slots]


@dataclass(frozen=True)
class Allocation:
    """Full fleet → servers/slots mapping."""

    servers: tuple  # tuple[ServerAssignment, ...]
    plan: SlotPlan

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def n_clients(self) -> int:
        return sum(s.n_clients for s in self.servers)

    @property
    def client_ids(self) -> List[int]:
        """Every allocated client id, in slot order."""
        return [cid for srv in self.servers for slot in srv.slots for cid in slot]

    def server_of(self, client_id: int) -> int:
        """Index of the server serving ``client_id``."""
        for srv in self.servers:
            for slot in srv.slots:
                if client_id in slot:
                    return srv.server_index
        raise KeyError(f"client {client_id} is not allocated")

    def validate(self) -> None:
        """Check structural invariants; raises :class:`InvariantViolation`
        (a ``ValueError`` subclass, so pre-existing handlers keep working).

        The ``seen`` set spans *all* servers, so a client id appearing on
        two different servers (a failover-repack bug) is rejected, not just
        duplicates within one server.  Duplicate ``server_index`` values are
        rejected too: two assignments sharing an index keep occupancies
        summing correctly while corrupting every by-index consumer
        (:func:`repack_failed_servers` would silently drop one server's
        clients from its orphan list).
        """
        seen = set()
        seen_indices = set()
        for srv in self.servers:
            if srv.server_index in seen_indices:
                raise InvariantViolation(
                    "slot-occupancy",
                    f"server index {srv.server_index} assigned twice",
                    {"server_index": srv.server_index},
                )
            seen_indices.add(srv.server_index)
            if len(srv.slots) > self.plan.slots_per_cycle:
                raise InvariantViolation(
                    "slot-occupancy",
                    f"server {srv.server_index} uses {len(srv.slots)} slots "
                    f"(> {self.plan.slots_per_cycle} per cycle)",
                    {"server_index": srv.server_index},
                )
            for slot in srv.slots:
                if len(slot) > self.plan.max_parallel:
                    raise InvariantViolation(
                        "slot-occupancy",
                        f"server {srv.server_index}: slot holds {len(slot)} clients "
                        f"(> max_parallel {self.plan.max_parallel})",
                        {"server_index": srv.server_index},
                    )
                for cid in slot:
                    if cid in seen:
                        raise InvariantViolation(
                            "slot-occupancy",
                            f"client {cid} allocated twice",
                            {"client_id": cid},
                        )
                    seen.add(cid)


class FillingPolicy(Protocol):
    """Strategy interface: distribute ``client_ids`` into servers/slots.

    Concrete policies carry a ``kind`` tag recognized by
    :class:`repro.core.livealloc.LiveAllocation`; batch allocation *is* the
    fold of ``admit`` over ``client_ids`` in order, so the online and batch
    paths share one layout engine.  The canonical implementations live in
    :mod:`repro.core.placement` (:class:`PlacementPolicy` and subclasses);
    this Protocol remains for structural typing of third-party policies.
    """

    kind: str

    def allocate(self, client_ids: Sequence[int], plan: SlotPlan) -> Allocation: ...


#: Historical name for the shared batch-as-a-fold entry point; the policy
#: hierarchy now lives in :mod:`repro.core.placement`.
_FoldPolicy = PlacementPolicy


def repack_failed_server(
    allocation: Allocation, failed_server_index: int,
    policy: Optional[object] = None,
) -> tuple:
    """Re-pack a failed server's clients into surviving servers' free slots.

    Single-failure shorthand for :func:`repack_failed_servers`; see there
    for the packing rules.
    """
    return repack_failed_servers(allocation, (failed_server_index,), policy)


def repack_failed_servers(
    allocation: Allocation, failed_server_indices: Sequence[int],
    policy: Optional[object] = None,
) -> tuple:
    """Re-pack every failed server's clients into surviving servers' free slots.

    Surviving servers keep their existing assignments untouched (their
    clients' wake-up offsets stay valid); orphaned clients fill the
    survivors' residual capacity one seat at a time, choosing at each step
    the open seat the ``policy`` prefers — topping up partially filled
    slots to ``max_parallel`` and opening unused slots up to the plan's
    ``slots_per_cycle``.  With no policy (or any whose
    :meth:`~repro.core.placement.PlacementPolicy.repack_preference` is the
    constant default: first-fit, round-robin, balanced) the fill is the
    historical first-fit repack — survivor order, slot order.  Best-fit
    tops up the fullest seats first, worst-fit the emptiest, solar-budget
    the sunniest slot windows, swarm-scored the highest-pheromone pairs.
    No new server is spun up: mid-cycle failover cannot provision hardware,
    so clients that do not fit are returned for the graceful-degradation
    path (local edge inference).

    All failures are removed *before* any orphan is placed, so a client can
    never fail over onto another server that is itself down (one-at-a-time
    repacking had exactly that cascade, double-counting the client's cycle).
    Orphans are gathered in the order the failed indices are given.

    Returns ``(new_allocation, unplaced_client_ids)``; the new allocation
    excludes the failed servers and is re-validated, so a repack can never
    silently duplicate a client or overfill a slot — saturating a slot to
    the cap is allowed (and loss A then prices it accordingly).
    """
    failed_set = set(failed_server_indices)
    known_set = {srv.server_index for srv in allocation.servers}
    missing = failed_set - known_set
    if missing:
        known = ", ".join(str(i) for i in sorted(known_set))
        bad = ", ".join(str(i) for i in sorted(missing))
        raise ValueError(f"no server {bad} in allocation (servers: {known})")

    by_index = {srv.server_index: srv for srv in allocation.servers}
    survivors: List[ServerAssignment] = [
        srv for srv in allocation.servers if srv.server_index not in failed_set
    ]

    plan = allocation.plan
    orphans = [
        cid
        for sidx in dict.fromkeys(failed_server_indices)
        for slot in by_index[sidx].slots
        for cid in slot
    ]
    pos = 0
    if policy is None:
        # historical first-fit fill, kept as the O(orphans + slots) fast path
        repacked: List[ServerAssignment] = []
        for srv in survivors:
            slots = [list(s) for s in srv.slots]
            for slot in slots:
                while pos < len(orphans) and len(slot) < plan.max_parallel:
                    slot.append(orphans[pos])
                    pos += 1
            while pos < len(orphans) and len(slots) < plan.slots_per_cycle:
                take = min(plan.max_parallel, len(orphans) - pos)
                slots.append(list(orphans[pos : pos + take]))
                pos += take
            repacked.append(
                ServerAssignment(srv.server_index, tuple(tuple(s) for s in slots))
            )
    else:
        pol = resolve_policy(policy)
        n_before = len(allocation.servers)
        open_slots = [[list(s) for s in srv.slots] for srv in survivors]
        while pos < len(orphans):
            best = None  # (preference, survivor_pos, slot_ordinal)
            for si, srv in enumerate(survivors):
                slots = open_slots[si]
                candidates = [
                    sj for sj, slot in enumerate(slots)
                    if len(slot) < plan.max_parallel
                ]
                if len(slots) < plan.slots_per_cycle:
                    candidates.append(len(slots))  # open a fresh slot
                for sj in candidates:
                    occ = len(slots[sj]) if sj < len(slots) else 0
                    key = (
                        pol.repack_preference(
                            srv.server_index, sj, occ, plan, n_before
                        ),
                        si,
                        sj,
                    )
                    if best is None or key < best[0]:
                        best = (key, si, sj)
            if best is None:
                break  # every survivor is full
            _, si, sj = best
            if sj == len(open_slots[si]):
                open_slots[si].append([])
            open_slots[si][sj].append(orphans[pos])
            pos += 1
        repacked = [
            ServerAssignment(srv.server_index, tuple(tuple(s) for s in open_slots[si]))
            for si, srv in enumerate(survivors)
        ]

    new_alloc = Allocation(tuple(repacked), plan)
    new_alloc.validate()
    return new_alloc, tuple(orphans[pos:])


class Allocator:
    """Front door: size slots for a server/loss combination and apply a policy."""

    def __init__(
        self,
        server: ServerProfile,
        period: float = CYCLE_SECONDS,
        losses: Optional[LossConfig] = None,
        policy: Optional[object] = None,
    ) -> None:
        self.server = server
        self.period = period
        self.losses = losses or LossConfig.none()
        # strings/aliases and PlacementPolicy instances both resolve; pass
        # an instance to share memoized score tables with a LiveAllocation.
        self.policy = resolve_policy(policy) if policy is not None else FirstFitPolicy()
        extra = (
            self.losses.transfer.sizing_extra_s(server.max_parallel)
            if self.losses.transfer is not None
            else 0.0
        )
        self.sizing_extra_s = extra
        self.plan = SlotPlan.for_server(server, period, extra_transfer_s=extra)

    def allocate(self, n_clients: int) -> Allocation:
        """Allocate ``n_clients`` anonymous clients (ids 0..n-1)."""
        if n_clients < 0:
            raise ValueError("n_clients must be >= 0")
        return self.policy.allocate(range(n_clients), self.plan)

    def servers_required(self, n_clients: int) -> int:
        """Minimum number of servers for ``n_clients``."""
        if n_clients < 0:
            raise ValueError("n_clients must be >= 0")
        if n_clients == 0:
            return 0
        return math.ceil(n_clients / self.plan.capacity)


__all__ = [
    "ServerAssignment",
    "Allocation",
    "FillingPolicy",
    "PlacementPolicy",
    "FirstFitPolicy",
    "RoundRobinPolicy",
    "BalancedPolicy",
    "BestFitPolicy",
    "WorstFitPolicy",
    "SolarBudgetPolicy",
    "SwarmScoredPolicy",
    "resolve_policy",
    "repack_failed_server",
    "repack_failed_servers",
    "Allocator",
]
