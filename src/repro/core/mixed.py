"""Heterogeneous fleets: client groups with different wake-up periods.

§IV motivates per-service wake-up frequencies ("for a service tracking the
temperature ... every 60 or 120 minutes suffices; ... collecting data every
5 minutes becomes reasonable").  This module extends the §VI simulation to
fleets mixing such groups behind shared servers: a group whose period is
``k×`` the base cycle only needs upload slots every k-th cycle, so staggering
its phases lets one server carry far more slow clients than fast ones.

Model: every group's period must be an integer multiple of the base cycle.
Clients of a ``k×`` group are striped uniformly over ``k`` phases; per base
cycle the due clients (one phase per group) are allocated first-fit to the
shared slot plan.  Energy is accounted over the hyperperiod (LCM of all
periods) and reported per base cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.core.client import ClientProfile
from repro.core.losses import LossConfig
from repro.core.server import ServerProfile, SlotPlan
from repro.core.simulate import server_cycle_energy
from repro.util.tabulate import render_table
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ClientGroup:
    """A homogeneous sub-fleet: ``count`` clients sharing one profile.

    ``uploads`` may be False for edge-only groups (they consume no slots).
    """

    name: str
    client: ClientProfile
    count: int
    uploads: bool = True

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"group {self.name!r}: count must be >= 0")

    def period_multiple(self, base_period: float) -> int:
        """The group's period as an integer multiple of the base cycle."""
        ratio = self.client.period / base_period
        k = int(round(ratio))
        if k < 1 or abs(ratio - k) > 1e-9:
            raise ValueError(
                f"group {self.name!r}: period {self.client.period} is not an integer "
                f"multiple of the base cycle {base_period}"
            )
        return k


@dataclass(frozen=True)
class MixedFleetResult:
    """Hyperperiod-averaged outcome of a mixed fleet."""

    hyperperiod: float
    base_period: float
    n_servers: int
    edge_energy_per_cycle: float  # whole fleet, per base cycle
    server_energy_per_cycle: float
    group_edge_energy_per_cycle: Tuple[Tuple[str, float], ...]
    due_per_cycle: Tuple[int, ...]  # clients uploading in each base cycle of the hyperperiod

    @property
    def total_energy_per_cycle(self) -> float:
        return self.edge_energy_per_cycle + self.server_energy_per_cycle

    @property
    def peak_due(self) -> int:
        return max(self.due_per_cycle) if self.due_per_cycle else 0

    def render(self) -> str:
        rows = list(self.group_edge_energy_per_cycle)
        rows.append(("server(s)", self.server_energy_per_cycle))
        rows.append(("total", self.total_energy_per_cycle))
        return render_table(
            ["Component", "J per base cycle"],
            rows,
            formats=[None, ".1f"],
            title=(
                f"Mixed fleet: {self.n_servers} server(s), peak {self.peak_due} uploads/cycle, "
                f"hyperperiod {self.hyperperiod:.0f} s"
            ),
        )


def _phase_counts(count: int, k: int) -> List[int]:
    """Stripe ``count`` clients uniformly over ``k`` phases."""
    base, extra = divmod(count, k)
    return [base + (1 if p < extra else 0) for p in range(k)]


def simulate_mixed_fleet(
    groups: Sequence[ClientGroup],
    server: Optional[ServerProfile],
    base_period: float = CYCLE_SECONDS,
    losses: Optional[LossConfig] = None,
) -> MixedFleetResult:
    """Simulate a heterogeneous fleet over one hyperperiod.

    ``server`` may be ``None`` only if no group uploads.  Loss model C is
    not supported here (dropout over a hyperperiod needs per-cycle draws
    that would make the closed-form accounting misleading); A and B apply
    as in the homogeneous simulator.
    """
    check_positive(base_period, "base_period")
    if not groups:
        raise ValueError("no client groups")
    losses = losses or LossConfig.none()
    if losses.client_loss is not None:
        raise ValueError("simulate_mixed_fleet does not support loss model C")
    uploading = [g for g in groups if g.uploads and g.count > 0]
    if uploading and server is None:
        raise ValueError("uploading groups require a server profile")

    multiples = {g.name: g.period_multiple(base_period) for g in groups}
    hyper_k = 1
    for g in groups:
        hyper_k = math.lcm(hyper_k, multiples[g.name])

    # Due uploads per base cycle of the hyperperiod.
    due = np.zeros(hyper_k, dtype=np.int64)
    for g in uploading:
        k = multiples[g.name]
        counts = _phase_counts(g.count, k)
        for phase, c in enumerate(counts):
            due[phase::k] += c

    # Server provisioning: enough servers for the busiest cycle.
    n_servers = 0
    server_energy_total = 0.0
    if uploading:
        assert server is not None
        sizing_extra = (
            losses.transfer.sizing_extra_s(server.max_parallel) if losses.transfer else 0.0
        )
        plan = SlotPlan.for_server(server, base_period, extra_transfer_s=sizing_extra)
        peak = int(due.max())
        n_servers = max(1, math.ceil(peak / plan.capacity))
        p = server.max_parallel
        for cycle_due in due:
            # First-fit occupancies for this cycle across the server pool.
            full, rem = divmod(int(cycle_due), p)
            occupancies = [p] * full + ([rem] if rem else [])
            # Distribute slot usage over the pool: energy is additive, so we
            # charge the pool's idle baseline once per server and the slot
            # marginals regardless of which server hosts them.
            server_energy_total += n_servers * server.idle_watts * base_period
            for k_occ in occupancies:
                server_energy_total += (
                    server_cycle_energy(server, [k_occ], base_period, sizing_extra, losses)
                    - server.idle_watts * base_period
                )

    # Edge energy per base cycle: each group's cycle energy amortized.
    group_rows = []
    edge_total_per_cycle = 0.0
    for g in groups:
        k = multiples[g.name]
        per_cycle = g.count * g.client.cycle_energy / k
        group_rows.append((g.name, per_cycle))
        edge_total_per_cycle += per_cycle

    return MixedFleetResult(
        hyperperiod=hyper_k * base_period,
        base_period=base_period,
        n_servers=n_servers,
        edge_energy_per_cycle=edge_total_per_cycle,
        server_energy_per_cycle=server_energy_total / hyper_k,
        group_edge_energy_per_cycle=tuple(group_rows),
        due_per_cycle=tuple(int(d) for d in due),
    )
