"""Crossover analysis between the edge and edge+cloud scenarios (Figure 7).

Given two per-client cost curves over the same fleet sizes, finds

* the **first crossover**: smallest fleet at which edge+cloud matches or
  beats edge (paper: 406 clients at 35 clients/slot);
* the **permanent crossover**: smallest fleet from which edge+cloud stays
  at least as cheap for every larger evaluated fleet (paper: 803);
* the **maximum gap** in favour of edge+cloud and where it occurs
  (paper: 12.5 J at 630 clients);
* the **tipping capacity**: the smallest per-slot cap for which a *full*
  server makes edge+cloud competitive at all (paper: 26 clients/slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.core.routines import Scenario
from repro.util.tabulate import render_kv


@dataclass(frozen=True)
class CrossoverReport:
    """Summary of an edge vs edge+cloud comparison over a fleet-size grid."""

    first_crossover: Optional[int]  # fleet size, None if edge always wins
    permanent_crossover: Optional[int]
    max_gap_j: float  # positive = edge+cloud advantage
    max_gap_at: Optional[int]
    fraction_cloud_better: float

    def render(self) -> str:
        return render_kv(
            [
                ("first crossover (clients)", self.first_crossover),
                ("permanent crossover (clients)", self.permanent_crossover),
                ("max edge+cloud advantage (J/client)", f"{self.max_gap_j:.1f}"),
                ("at fleet size", self.max_gap_at),
                ("fraction of grid where edge+cloud wins", f"{self.fraction_cloud_better:.1%}"),
            ],
            title="Edge vs Edge+Cloud crossover",
        )


def find_crossover(
    n_clients: np.ndarray,
    edge_per_client: np.ndarray,
    cloud_per_client: np.ndarray,
) -> CrossoverReport:
    """Analyse two aligned per-client cost curves."""
    n = np.asarray(n_clients)
    edge = np.asarray(edge_per_client, dtype=float)
    cloud = np.asarray(cloud_per_client, dtype=float)
    if not (n.shape == edge.shape == cloud.shape):
        raise ValueError("n_clients, edge and cloud curves must be aligned")
    if n.size == 0:
        raise ValueError("empty curves")
    better = cloud <= edge
    first = int(n[np.argmax(better)]) if better.any() else None
    # Permanent: last index where cloud is worse; permanent point is the next one.
    if better.all():
        permanent = int(n[0])
    elif not better.any():
        permanent = None
    else:
        last_worse = np.nonzero(~better)[0][-1]
        permanent = int(n[last_worse + 1]) if last_worse + 1 < n.size else None
    gap = edge - cloud
    imax = int(np.argmax(gap))
    max_gap = float(gap[imax])
    return CrossoverReport(
        first_crossover=first,
        permanent_crossover=permanent,
        max_gap_j=max_gap,
        max_gap_at=int(n[imax]) if max_gap > 0 else None,
        fraction_cloud_better=float(np.mean(better)),
    )


def tipping_max_parallel(
    edge_scenario: Scenario,
    cloud_scenario: Scenario,
    period: float = CYCLE_SECONDS,
    search_to: int = 200,
) -> int:
    """Smallest per-slot cap at which a *fully used* server makes edge+cloud
    at least as energy-efficient as edge (paper: 26).

    At full capacity ``N = slots × p`` the per-client cost is
    ``client_cycle + (idle·T + slots·marginal(p)) / (slots·p)``.
    """
    if cloud_scenario.is_edge_only:
        raise ValueError("cloud_scenario must have a server")
    edge_cost = edge_scenario.client.cycle_energy
    client_cost = cloud_scenario.client.cycle_energy
    server = cloud_scenario.server
    # The slot geometry does not depend on the per-slot cap, so the whole
    # grid prices in one vector pass.  The expression replays the loop's
    # floats elementwise — ``marginal(p) = occupied_slot_energy(p, cap=p)
    # − idle·slot_dur`` expanded per :func:`occupied_slot_energy` with no
    # losses — so the selected cap is identical to the scalar scan's.
    slots = server.slots_per_cycle(period)
    slot_dur = server.slot_duration()
    p = np.arange(1, search_to + 1, dtype=np.float64)
    active = (server.receive_watts - server.idle_watts) * server.transfer_s + p * (
        server.service.energy - server.idle_watts * server.service.duration
    )
    marginal = (server.idle_watts * slot_dur + active) - server.idle_watts * slot_dur
    per_client = client_cost + (server.idle_watts * period + slots * marginal) / (slots * p)
    hits = np.nonzero(per_client <= edge_cost)[0]
    if not hits.size:
        raise ValueError(f"no tipping point up to max_parallel={search_to}")
    return int(hits[0]) + 1


def crossover_report(
    edge_sweep,
    cloud_sweep,
) -> CrossoverReport:
    """Convenience: analyse two :class:`~repro.core.sweep.SweepResult` objects."""
    if not np.array_equal(edge_sweep.n_clients, cloud_sweep.n_clients):
        raise ValueError("sweeps must share the same fleet-size grid")
    return find_crossover(
        edge_sweep.n_clients,
        edge_sweep.total_energy_per_client,
        cloud_sweep.total_energy_per_client,
    )
