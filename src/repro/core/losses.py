"""Loss models of §VI-C.

Three independent loss mechanisms, composable through :class:`LossConfig`:

* **A — slot saturation** (:class:`SaturationPenalty`): once a slot's
  occupancy exceeds ``max_parallel − margin``, each extra client inflates
  the slot's energy by ``rate`` (default 10 %) of the slot energy.
* **B — transfer stretch** (:class:`TransferTimePenalty`): clients in a slot
  send simultaneously; each adds ``extra_s`` (default 1.5 s) to the slot's
  transfer window.  Slot *sizing* must assume the worst case
  (``max_parallel`` senders), so slots get longer, fewer fit per cycle and
  more servers are needed.
* **C — client loss** (:class:`ClientLoss`): at every wake-up a Gaussian
  number of clients (mean 10 % of the fleet, σ = 2) fails to report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class SaturationPenalty:
    """Loss A: energy penalty on saturating slots.

    ``base`` selects what the penalty multiplies — the paper says "each
    additional client penalizes the whole energy slots by 10 %", which is
    ambiguous between the slot's *whole* window energy (``base='slot'``,
    the default: it reproduces Figure 8a's converged 186 J server cost) and
    only its *active* (receive+service) energy (``base='active'``: the
    interpretation under which Figure 9's edge+cloud-still-wins intervals
    are reachable).  See DESIGN.md §"loss-model ambiguities".
    """

    margin: int = PAPER.loss_a_margin
    rate: float = PAPER.loss_a_rate
    base: str = "slot"

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ValueError("margin must be >= 0")
        check_non_negative(self.rate, "rate")
        if self.base not in ("slot", "active"):
            raise ValueError(f"base must be 'slot' or 'active', got {self.base!r}")

    def multiplier(self, occupancy: int, max_parallel: int) -> float:
        """Slot-energy multiplier for ``occupancy`` clients."""
        if occupancy < 0 or occupancy > max_parallel:
            raise ValueError(f"occupancy {occupancy} outside [0, {max_parallel}]")
        threshold = max(max_parallel - self.margin, 0)
        over = max(occupancy - threshold, 0)
        return 1.0 + self.rate * over


@dataclass(frozen=True)
class TransferTimePenalty:
    """Loss B: transfer-time stretch.

    "A time penalty of 1.5 extra second per client for clients' data
    transfer time" with synchronized simultaneous senders is ambiguous:

    * ``cumulative=True`` (default): the slot's receive window grows by
      1.5 s *per admitted client* (channel contention scales with senders).
      This reproduces Figure 8b — 4 servers instead of 2 at 350 clients.
    * ``cumulative=False``: every client's transfer takes a constant 1.5 s
      longer regardless of how many send together.  This is the only
      reading under which Figure 9's "3 servers for 1600–1750 clients at 35
      per slot" is geometrically possible.
    """

    extra_s_per_client: float = PAPER.loss_b_extra_s_per_client
    cumulative: bool = True

    def __post_init__(self) -> None:
        check_non_negative(self.extra_s_per_client, "extra_s_per_client")

    def sizing_extra_s(self, max_parallel: int) -> float:
        """Transfer stretch used for slot sizing (worst case: full slot)."""
        if max_parallel < 1:
            raise ValueError("max_parallel must be >= 1")
        if self.cumulative:
            return self.extra_s_per_client * max_parallel
        return self.extra_s_per_client

    def actual_extra_s(self, occupancy: int) -> float:
        """Transfer stretch actually realized for an occupancy."""
        if occupancy < 0:
            raise ValueError("occupancy must be >= 0")
        if self.cumulative:
            return self.extra_s_per_client * occupancy
        return self.extra_s_per_client if occupancy > 0 else 0.0


@dataclass(frozen=True)
class ClientLoss:
    """Loss C: Gaussian per-wake-up client dropout.

    This is the *statistical* view of client unavailability: a count is
    drawn per wake-up with no notion of which client failed or for how
    long.  The explicit-process view lives in
    :class:`repro.faults.spec.ClientCrash` — a zero-repair crash process
    whose per-cycle miss probability matches ``mean_fraction`` reproduces
    this loss in expectation (see ``ClientCrash.from_client_loss``).
    """

    mean_fraction: float = PAPER.loss_c_mean_fraction
    std: float = PAPER.loss_c_std

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_fraction <= 1.0:
            raise ValueError("mean_fraction must be in [0, 1]")
        check_non_negative(self.std, "std")

    def draw_lost(self, n_clients: int, rng: np.random.Generator) -> int:
        """Number of clients that fail to report this wake-up."""
        if n_clients < 0:
            raise ValueError("n_clients must be >= 0")
        if n_clients == 0:
            return 0
        lost = rng.normal(self.mean_fraction * n_clients, self.std)
        return int(np.clip(round(lost), 0, n_clients))

    def draw_lost_array(self, n_clients: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized :meth:`draw_lost` over an array of fleet sizes."""
        n = np.asarray(n_clients, dtype=np.int64)
        if np.any(n < 0):
            raise ValueError("n_clients must be >= 0")
        lost = rng.normal(self.mean_fraction * n, self.std)
        return np.clip(np.round(lost), 0, n).astype(np.int64)


@dataclass(frozen=True)
class LossConfig:
    """Composition of the three loss models (any subset may be active)."""

    saturation: Optional[SaturationPenalty] = None
    transfer: Optional[TransferTimePenalty] = None
    client_loss: Optional[ClientLoss] = None

    @staticmethod
    def none() -> "LossConfig":
        """The ideal, loss-free configuration (§VI-B)."""
        return LossConfig()

    @staticmethod
    def all_paper(constants: PaperConstants = PAPER) -> "LossConfig":
        """All three losses at the paper's parameter values (§VI-C, Fig 8d).

        Uses the Figure-8-consistent readings (A on whole-slot energy,
        cumulative B); see :meth:`fig9` for the Figure-9-consistent variant.
        """
        return LossConfig(
            saturation=SaturationPenalty(constants.loss_a_margin, constants.loss_a_rate),
            transfer=TransferTimePenalty(constants.loss_b_extra_s_per_client),
            client_loss=ClientLoss(constants.loss_c_mean_fraction, constants.loss_c_std),
        )

    @staticmethod
    def fig9(constants: PaperConstants = PAPER) -> "LossConfig":
        """All three losses under the Figure-9-consistent readings.

        The paper's Figure 9 (35 clients/slot, all losses, edge+cloud still
        winning in intervals with only 3 servers up to ~1750 clients) is
        only reachable when loss B is a constant per-transfer stretch and
        loss A multiplies the slot's *active* energy; see the class
        docstrings and DESIGN.md.
        """
        return LossConfig(
            saturation=SaturationPenalty(constants.loss_a_margin, constants.loss_a_rate, base="active"),
            transfer=TransferTimePenalty(constants.loss_b_extra_s_per_client, cumulative=False),
            client_loss=ClientLoss(constants.loss_c_mean_fraction, constants.loss_c_std),
        )

    @property
    def any_active(self) -> bool:
        return any(x is not None for x in (self.saturation, self.transfer, self.client_loss))

    def describe(self) -> str:
        parts = []
        if self.saturation:
            parts.append(f"A(margin={self.saturation.margin}, rate={self.saturation.rate:g})")
        if self.transfer:
            parts.append(f"B(+{self.transfer.extra_s_per_client:g}s/client)")
        if self.client_loss:
            parts.append(f"C(mean={self.client_loss.mean_fraction:.0%}, std={self.client_loss.std:g})")
        return " + ".join(parts) if parts else "no loss"
