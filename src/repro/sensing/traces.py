"""Uniformly sampled time series container.

A :class:`Trace` couples a start time, a fixed step, and a value array.  It
is the exchange format between the weather generator, the harvest simulation
and the experiment plots, and supports slicing by time and linear resampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Trace:
    """Uniformly sampled series: ``values[i]`` holds at ``start + i*step``."""

    name: str
    start: float
    step: float
    values: np.ndarray

    def __post_init__(self) -> None:
        check_positive(self.step, "step")
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"trace {self.name!r}: values must be 1-D, got shape {arr.shape}")
        object.__setattr__(self, "values", arr)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def times(self) -> np.ndarray:
        """Timestamps for every sample."""
        return self.start + np.arange(len(self)) * self.step

    @property
    def end(self) -> float:
        """Time of the last sample."""
        return self.start + (len(self) - 1) * self.step if len(self) else self.start

    def at(self, time) -> float | np.ndarray:
        """Linear interpolation at ``time`` (clamped to the trace extent)."""
        return np.interp(time, self.times, self.values)

    def window(self, t0: float, t1: float) -> "Trace":
        """Sub-trace covering [t0, t1] (sample-aligned)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        times = self.times
        mask = (times >= t0 - 1e-9) & (times <= t1 + 1e-9)
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            raise ValueError(f"window [{t0}, {t1}] does not intersect trace {self.name!r}")
        return Trace(self.name, float(times[idx[0]]), self.step, self.values[idx])

    def mean(self) -> float:
        return float(self.values.mean())

    def map(self, fn, name: str | None = None) -> "Trace":
        """Apply ``fn`` elementwise (vectorized) and return a new trace."""
        return Trace(name or self.name, self.start, self.step, np.asarray(fn(self.values), dtype=float))


def resample(trace: Trace, step: float) -> Trace:
    """Linear resampling of ``trace`` onto a new fixed ``step``."""
    check_positive(step, "step")
    if len(trace) < 2:
        raise ValueError("resampling requires at least 2 samples")
    duration = trace.end - trace.start
    n = int(np.floor(duration / step)) + 1
    new_times = trace.start + np.arange(n) * step
    return Trace(trace.name, trace.start, step, np.interp(new_times, trace.times, trace.values))
