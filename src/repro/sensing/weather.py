"""Synthetic weather generation.

Produces week-scale traces of outdoor temperature, relative humidity, cloud
cover and irradiance with a realistic structure:

* temperature = seasonal mean + diurnal cosine (coldest pre-dawn, warmest
  mid-afternoon) + AR(1) weather noise;
* cloud cover = per-day beta-distributed base + intra-day AR(1) wander;
* irradiance = clear-sky arch × (1 − 0.75 × cloud cover);
* humidity inversely coupled to the diurnal temperature swing.

Defaults approximate spring in Lyon/Paris where the paper's hives sit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.solar import clear_sky_irradiance
from repro.sensing.traces import Trace
from repro.util.rng import SeedLike, make_rng
from repro.util.units import DAY, HOUR
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class WeatherTrace:
    """Bundle of aligned weather traces."""

    temperature_c: Trace
    humidity_pct: Trace
    cloud_cover: Trace
    irradiance: Trace

    @property
    def step(self) -> float:
        return self.temperature_c.step

    @property
    def times(self) -> np.ndarray:
        return self.temperature_c.times


class WeatherModel:
    """Generator of synthetic weather weeks.

    Parameters
    ----------
    mean_temperature_c:
        Seasonal mean outdoor temperature.
    diurnal_amplitude_c:
        Half peak-to-peak of the daily temperature swing.
    cloudiness:
        Mean of the per-day cloud-cover distribution in [0, 1].
    sunrise_s / sunset_s:
        Daylight window (seconds after local midnight).
    """

    def __init__(
        self,
        mean_temperature_c: float = 14.0,
        diurnal_amplitude_c: float = 5.0,
        cloudiness: float = 0.35,
        sunrise_s: float = 6.0 * HOUR,
        sunset_s: float = 20.0 * HOUR,
        peak_irradiance: float = 900.0,
    ) -> None:
        self.mean_temperature_c = float(mean_temperature_c)
        self.diurnal_amplitude_c = check_positive(diurnal_amplitude_c, "diurnal_amplitude_c")
        self.cloudiness = check_in_range(cloudiness, "cloudiness", 0.0, 1.0)
        if sunset_s <= sunrise_s:
            raise ValueError("sunset_s must be after sunrise_s")
        self.sunrise_s = float(sunrise_s)
        self.sunset_s = float(sunset_s)
        self.peak_irradiance = check_positive(peak_irradiance, "peak_irradiance")

    def generate(self, duration: float = 7 * DAY, step: float = 300.0, seed: SeedLike = None) -> WeatherTrace:
        """Generate a :class:`WeatherTrace` of ``duration`` seconds."""
        check_positive(duration, "duration")
        check_positive(step, "step")
        rng = make_rng(seed)
        n = int(np.ceil(duration / step))
        times = np.arange(n) * step
        tod = times % DAY

        # --- temperature: diurnal cosine, min ~05h, max ~15h -------------
        phase = 2 * np.pi * (tod - 15.0 * HOUR) / DAY
        diurnal = self.diurnal_amplitude_c * np.cos(phase)
        # AR(1) noise with ~6 h correlation time.
        rho = np.exp(-step / (6 * HOUR))
        eps = rng.normal(0.0, 1.2 * np.sqrt(1 - rho**2), size=n)
        noise = np.empty(n)
        noise[0] = rng.normal(0.0, 1.2)
        for i in range(1, n):
            noise[i] = rho * noise[i - 1] + eps[i]
        temperature = self.mean_temperature_c + diurnal + noise

        # --- cloud cover: per-day beta base + intra-day wander ------------
        n_days = int(np.ceil(duration / DAY)) + 1
        # Beta with mean = cloudiness and moderate concentration.
        conc = 4.0
        a = max(self.cloudiness * conc, 1e-3)
        b = max((1 - self.cloudiness) * conc, 1e-3)
        day_base = rng.beta(a, b, size=n_days)
        base = day_base[(times // DAY).astype(int)]
        rho_c = np.exp(-step / (3 * HOUR))
        wander = np.empty(n)
        wander[0] = 0.0
        eps_c = rng.normal(0.0, 0.12 * np.sqrt(1 - rho_c**2), size=n)
        for i in range(1, n):
            wander[i] = rho_c * wander[i - 1] + eps_c[i]
        cloud = np.clip(base + wander, 0.0, 1.0)

        # --- irradiance ----------------------------------------------------
        clear = clear_sky_irradiance(
            times, sunrise_s=self.sunrise_s, sunset_s=self.sunset_s, peak_irradiance=self.peak_irradiance
        )
        irradiance = clear * (1.0 - 0.75 * cloud)

        # --- humidity: high at night / when cloudy, low mid-afternoon ------
        humidity = 78.0 - 2.2 * (temperature - self.mean_temperature_c) + 12.0 * (cloud - self.cloudiness)
        humidity = np.clip(humidity + rng.normal(0.0, 1.5, size=n), 20.0, 100.0)

        return WeatherTrace(
            temperature_c=Trace("outdoor_temperature_c", 0.0, step, temperature),
            humidity_pct=Trace("outdoor_humidity_pct", 0.0, step, humidity),
            cloud_cover=Trace("cloud_cover", 0.0, step, cloud),
            irradiance=Trace("irradiance_wm2", 0.0, step, irradiance),
        )
