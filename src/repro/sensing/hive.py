"""In-hive microclimate model.

Honey-bee colonies thermoregulate the brood nest near 35 °C; an *empty* hive
(the paper's Figure 2a was captured before the colony was introduced, hence
"abnormally low inside temperature") simply low-pass-filters ambient.  The
model blends the two regimes through a ``colony_strength`` parameter.
"""

from __future__ import annotations

import numpy as np

from repro.sensing.traces import Trace
from repro.util.rng import SeedLike, make_rng
from repro.util.units import HOUR
from repro.util.validation import check_in_range, check_positive

#: Brood-nest setpoint maintained by a healthy colony (°C).
BROOD_SETPOINT_C = 35.0


class HiveMicroclimate:
    """First-order thermal model of the hive interior.

    ``dT/dt = (T_ambient - T) / tau + strength * k * (T_set - T) + noise``

    Parameters
    ----------
    colony_strength:
        0 → empty hive (tracks ambient through the box's thermal lag);
        1 → strong colony (regulates toward 35 °C).
    thermal_lag_s:
        Box time constant (wooden hive ≈ 2 h).
    regulation_gain:
        Colony regulation rate at full strength (1/s).
    """

    def __init__(
        self,
        colony_strength: float = 1.0,
        thermal_lag_s: float = 2.0 * HOUR,
        regulation_gain: float = 1.0 / 120.0,
        setpoint_c: float = BROOD_SETPOINT_C,
    ) -> None:
        self.colony_strength = check_in_range(colony_strength, "colony_strength", 0.0, 1.0)
        self.thermal_lag_s = check_positive(thermal_lag_s, "thermal_lag_s")
        self.regulation_gain = check_positive(regulation_gain, "regulation_gain")
        self.setpoint_c = float(setpoint_c)

    def simulate(self, ambient: Trace, seed: SeedLike = None) -> Trace:
        """Integrate the interior temperature over an ambient trace.

        Uses the exact exponential update of the linear ODE per step
        (``T → T_eq + (T − T_eq)·e^{−λ·dt}``), which is unconditionally
        stable for any step size — an explicit Euler step would blow up at
        the 5-minute weather grid with realistic regulation gains.
        """
        rng = make_rng(seed)
        n = len(ambient)
        if n < 2:
            raise ValueError("ambient trace must have >= 2 samples")
        dt = ambient.step
        temp = np.empty(n)
        k_reg = self.colony_strength * self.regulation_gain
        lam = 1.0 / self.thermal_lag_s + k_reg
        decay = np.exp(-lam * dt)
        temp[0] = ambient.values[0] + self.colony_strength * (self.setpoint_c - ambient.values[0]) * 0.8
        sigma = 0.15 * np.sqrt(dt / 300.0)
        noise = rng.normal(0.0, sigma, size=n)
        for i in range(1, n):
            t_eq = (ambient.values[i - 1] / self.thermal_lag_s + k_reg * self.setpoint_c) / lam
            temp[i] = t_eq + (temp[i - 1] - t_eq) * decay + noise[i]
        return Trace("hive_temperature_c", ambient.start, dt, temp)

    def humidity(self, interior_temp: Trace, ambient_humidity: Trace, seed: SeedLike = None) -> Trace:
        """In-hive relative humidity: colonies hold ~55-65 %; empty hives track ambient."""
        if len(interior_temp) != len(ambient_humidity):
            raise ValueError("traces must be aligned")
        rng = make_rng(seed)
        target = 60.0
        blend = self.colony_strength
        vals = blend * target + (1 - blend) * ambient_humidity.values
        vals = np.clip(vals + rng.normal(0.0, 1.0, size=len(interior_temp)), 15.0, 100.0)
        return Trace("hive_humidity_pct", interior_temp.start, interior_temp.step, vals)
