"""Synthetic environment: weather, in-hive microclimate, trace containers.

The paper deploys real hives in Cachan and Lyon and records weather alongside
the system traces (Figure 2).  Since real traces are unavailable, this
package generates statistically plausible substitutes: diurnal outdoor
temperature, per-day cloud cover modulating irradiance, and an in-hive
microclimate model (bee colonies thermoregulate the brood nest near 35 °C;
the paper's empty hive instead tracks ambient, which we also support).
"""

from repro.sensing.weather import WeatherModel, WeatherTrace
from repro.sensing.hive import HiveMicroclimate
from repro.sensing.traces import Trace, resample

__all__ = ["WeatherModel", "WeatherTrace", "HiveMicroclimate", "Trace", "resample"]
