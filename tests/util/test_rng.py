"""Tests for repro.util.rng."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng, rng_for, spawn


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_int_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        g = make_rng(seq)
        assert isinstance(g, np.random.Generator)

    def test_numpy_integer_seed(self):
        assert make_rng(np.int64(42)).random() == make_rng(42).random()

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            make_rng(1.5)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            make_rng("seed")


class TestSpawn:
    def test_children_are_independent_generators(self):
        parent = make_rng(0)
        kids = spawn(parent, 3)
        assert len(kids) == 3
        draws = [k.random() for k in kids]
        assert len(set(draws)) == 3

    def test_spawn_reproducible_from_same_parent_state(self):
        a = spawn(make_rng(5), 2)
        b = spawn(make_rng(5), 2)
        assert a[0].random() == b[0].random()
        assert a[1].random() == b[1].random()

    def test_repeated_spawn_differs(self):
        parent = make_rng(5)
        first = spawn(parent, 1)[0].random()
        second = spawn(parent, 1)[0].random()
        assert first != second

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), 0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_in_63_bit_range(self):
        s = derive_seed(999, "x")
        assert 0 <= s < 2**63

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_always_valid_seed(self, base, label):
        s = derive_seed(base, label)
        assert 0 <= s < 2**63
        make_rng(s)  # must not raise

    def test_rng_for_shorthand(self):
        assert rng_for(3, "x").random() == make_rng(derive_seed(3, "x")).random()

    def test_separator_in_label_does_not_collide(self):
        # Regression: a plain "/"-join made ("a/b",) and ("a", "b") collide.
        assert derive_seed(0, "a/b") != derive_seed(0, "a", "b")
        assert derive_seed(0, "a", "b/c") != derive_seed(0, "a/b", "c")

    def test_label_boundary_shifts_do_not_collide(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
        assert derive_seed(0, "", "x") != derive_seed(0, "x", "")
        assert derive_seed(0, "x") != derive_seed(0, "x", "")

    @given(
        st.lists(st.text(alphabet="ab/", max_size=4), max_size=4),
        st.lists(st.text(alphabet="ab/", max_size=4), max_size=4),
    )
    def test_distinct_label_paths_distinct_seeds(self, left, right):
        # Structure is part of the stream name: different label tuples must
        # name different streams (SHA-256 collisions aside).
        if tuple(left) != tuple(right):
            assert derive_seed(7, *left) != derive_seed(7, *right)


class TestChoiceWithoutReplacement:
    def test_distinct_items(self):
        from repro.util.rng import choice_without_replacement

        out = choice_without_replacement(make_rng(0), list(range(10)), 5)
        assert len(out) == 5
        assert len(set(out.tolist())) == 5

    def test_clamped_to_pool(self):
        from repro.util.rng import choice_without_replacement

        out = choice_without_replacement(make_rng(0), [1, 2, 3], 10)
        assert sorted(out.tolist()) == [1, 2, 3]

    def test_zero_size(self):
        from repro.util.rng import choice_without_replacement

        assert choice_without_replacement(make_rng(0), [1, 2], 0).size == 0


class TestSnapshotRestore:
    """RNG stream state survives a checkpoint round-trip (resilience layer)."""

    def test_stream_continues_identically(self):
        from repro.resilience.snapshot import restore_rng, snapshot_rng

        g = make_rng(123)
        g.random(17)  # advance into the stream
        snap = snapshot_rng(g)
        expected = g.random(32).tolist()
        restored = restore_rng(snap)
        assert restored.random(32).tolist() == expected

    def test_snapshot_is_json_serializable(self):
        import json

        from repro.resilience.snapshot import restore_rng, snapshot_rng

        g = make_rng(7)
        g.integers(0, 10, size=5)
        snap = json.loads(json.dumps(snapshot_rng(g)))
        assert restore_rng(snap).random() == g.random()

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=64))
    def test_round_trip_at_arbitrary_stream_positions(self, seed, n_draws):
        from repro.resilience.snapshot import restore_rng, snapshot_rng

        g = make_rng(seed)
        g.random(n_draws)
        restored = restore_rng(snapshot_rng(g))
        assert restored.integers(0, 2**62) == g.integers(0, 2**62)
        assert restored.random() == g.random()
