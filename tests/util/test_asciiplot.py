"""Tests for ASCII plotting."""

import numpy as np
import pytest

from repro.util.asciiplot import line_plot, plot_experiment


class TestLinePlot:
    def test_basic_structure(self):
        x = np.arange(10)
        out = line_plot(x, {"y": x * 2.0}, width=40, height=8, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert sum(1 for l in lines if "|" in l) == 8
        assert "*" in out
        assert "[* y]" in out

    def test_extremes_on_borders(self):
        x = np.array([0.0, 1.0])
        out = line_plot(x, {"y": np.array([0.0, 10.0])}, width=20, height=5)
        rows = [l for l in out.splitlines() if l.endswith("|")]
        assert "*" in rows[0]  # max in the top row
        assert "*" in rows[-1]  # min in the bottom row

    def test_axis_labels(self):
        x = np.array([5.0, 25.0])
        out = line_plot(x, {"y": x}, width=30, height=5, x_label="clients")
        assert "5" in out and "25" in out and "clients" in out

    def test_multiple_series_distinct_glyphs(self):
        x = np.arange(5, dtype=float)
        out = line_plot(x, {"a": x, "b": 4 - x}, width=30, height=6)
        assert "*" in out and "+" in out
        assert "[* a   + b]" in out

    def test_constant_series_no_crash(self):
        x = np.arange(4, dtype=float)
        out = line_plot(x, {"flat": np.ones(4)})
        assert "*" in out

    def test_validation(self):
        x = np.arange(5, dtype=float)
        with pytest.raises(ValueError):
            line_plot(x, {})
        with pytest.raises(ValueError):
            line_plot(x, {"bad": np.ones(3)})
        with pytest.raises(ValueError):
            line_plot(np.ones(1), {"y": np.ones(1)})
        with pytest.raises(ValueError):
            line_plot(x, {"y": x}, width=5)


class TestPlotExperiment:
    def test_fig3_plots(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("fig3")
        chart = plot_experiment(result)
        assert "average_power_w" in chart
        assert "period_s" in chart

    def test_scale_polluters_excluded(self):
        from repro.experiments.report import ExperimentResult

        r = ExperimentResult("x", "t")
        r.add_series("n_clients", np.arange(10))
        r.add_series("energy", np.arange(10) * 100.0)
        r.add_series("n_servers_p10", np.ones(10))
        chart = plot_experiment(r)
        assert "energy" in chart
        assert "n_servers" not in chart

    def test_no_x_series_returns_empty(self):
        from repro.experiments.report import ExperimentResult

        r = ExperimentResult("x", "t")
        r.add_series("stuff", np.arange(5))
        assert plot_experiment(r) == ""
