"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, summarize

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRunningStats:
    def test_empty_raises(self):
        s = RunningStats()
        with pytest.raises(ValueError):
            _ = s.mean

    def test_single_value(self):
        s = RunningStats()
        s.push(3.0)
        assert s.mean == 3.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == 3.0

    def test_matches_numpy(self, rng):
        data = rng.normal(5, 2, size=500)
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.std == pytest.approx(np.std(data, ddof=1))
        assert s.minimum == data.min() and s.maximum == data.max()

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_welford_agrees_with_numpy(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert s.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=30), st.lists(finite_floats, min_size=1, max_size=30))
    def test_merge_equals_concatenation(self, a, b):
        sa, sb, sc = RunningStats(), RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        sc.extend(a + b)
        merged = sa.merge(sb)
        assert merged.count == sc.count
        assert merged.mean == pytest.approx(sc.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(sc.variance, rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        s = RunningStats()
        s.push(1.0)
        merged = s.merge(RunningStats())
        assert merged.count == 1 and merged.mean == 1.0


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.p50 == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single(self):
        s = summarize([7.0])
        assert s.std == 0.0 and s.p95 == 7.0
