"""Crash-safety contract of :mod:`repro.util.atomic`.

A simulated crash mid-write (an exception raised while the payload is
being produced, or a writer that dies between bytes) must never leave a
truncated or corrupt file at the destination — the previous content stays
installed byte for byte, and no temporary litter survives.
"""

import json
import os

import pytest

from repro.util.atomic import atomic_write, atomic_write_json, atomic_writer


def _no_tmp_litter(directory):
    return [p for p in os.listdir(directory) if p.endswith(".tmp")] == []


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(path, "hello\n")
        assert path.read_text() == "hello\n"
        assert _no_tmp_litter(tmp_path)

    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write(path, "new")
        assert path.read_text() == "new"

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": [1, 2], "b": "x"})
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": "x"}
        assert path.read_text().endswith("\n")


class TestCrashMidWrite:
    def test_crash_leaves_previous_content_intact(self, tmp_path):
        """An exception mid-write must not touch the installed file."""
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"generation": 1})
        before = path.read_bytes()

        with pytest.raises(RuntimeError, match="simulated crash"):
            with atomic_writer(path) as fh:
                fh.write('{"generation": 2, "partial": ')
                raise RuntimeError("simulated crash mid-write")

        assert path.read_bytes() == before  # old artifact byte-identical
        assert _no_tmp_litter(tmp_path)  # and the temp file is gone

    def test_crash_on_first_write_leaves_no_file(self, tmp_path):
        path = tmp_path / "fresh.json"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("{")
                raise RuntimeError("boom")
        assert not path.exists()
        assert _no_tmp_litter(tmp_path)

    def test_unserializable_object_leaves_no_partial_json(self, tmp_path):
        """atomic_write_json serializes before opening: no partial artifact."""
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"ok": True})
        before = path.read_bytes()
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert path.read_bytes() == before
        assert _no_tmp_litter(tmp_path)

    def test_reader_never_sees_prefix(self, tmp_path):
        """While a write is in flight the destination still shows old bytes."""
        path = tmp_path / "artifact.json"
        atomic_write(path, "old-complete-document\n")
        with atomic_writer(path) as fh:
            fh.write("new-docu")  # half-written payload in the temp file
            assert path.read_text() == "old-complete-document\n"
            fh.write("ment\n")
        assert path.read_text() == "new-document\n"

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_writer(tmp_path / "x", mode="r"):
                pass


class TestDurability:
    def test_parent_directory_fsynced_after_replace(self, tmp_path, monkeypatch):
        """The rename itself must be durable: after ``os.replace`` the
        parent directory is fsynced, not just the temporary file."""
        synced_inodes = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced_inodes.append(os.fstat(fd).st_ino)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write(tmp_path / "out.txt", "payload\n")
        assert os.stat(tmp_path).st_ino in synced_inodes

    def test_fsync_false_skips_all_syncs(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        atomic_write(tmp_path / "out.txt", "payload\n", fsync=False)
        assert calls == []
        assert (tmp_path / "out.txt").read_text() == "payload\n"
