"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive(-1, "my_param")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, high_inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", 0.0, 1.0)

    def test_open_ended(self):
        assert check_in_range(1e9, "x", low=0.0) == 1e9


class TestCheckProbability:
    def test_valid(self):
        assert check_probability(0.5, "p") == 0.5

    def test_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(5, "n") == 5

    def test_accepts_numpy_int(self):
        import numpy as np

        assert check_integer(np.int32(5), "n") == 5

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(5.0, "n")

    def test_minimum(self):
        with pytest.raises(ValueError):
            check_integer(0, "n", minimum=1)
