"""Tests for repro.util.units."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    DAY,
    HOUR,
    MINUTE,
    format_duration,
    format_energy,
    format_power,
    joules_to_wh,
    mah_to_joules,
    wh_to_joules,
)


class TestConversions:
    def test_wh_to_joules(self):
        assert wh_to_joules(1.0) == 3600.0

    def test_roundtrip(self):
        assert joules_to_wh(wh_to_joules(2.5)) == pytest.approx(2.5)

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_roundtrip_property(self, wh):
        assert joules_to_wh(wh_to_joules(wh)) == pytest.approx(wh, rel=1e-12)

    def test_mah_power_bank(self):
        # The paper's 20 000 mAh bank at 3.7 V nominal ≈ 266 kJ ≈ 74 Wh.
        joules = mah_to_joules(20_000)
        assert joules == pytest.approx(266_400, rel=1e-6)
        assert joules_to_wh(joules) == pytest.approx(74.0, rel=1e-6)

    def test_time_constants(self):
        assert MINUTE == 60 and HOUR == 3600 and DAY == 86400


class TestFormatting:
    def test_seconds(self):
        assert format_duration(12.34) == "12.3s"

    def test_minutes(self):
        assert format_duration(89.0) == "1m 29.0s"

    def test_hours(self):
        assert format_duration(2 * HOUR + 30 * MINUTE) == "2h 30m"

    def test_days(self):
        assert format_duration(DAY + 6 * HOUR) == "1d 6h"

    def test_negative(self):
        assert format_duration(-5.0).startswith("-")

    def test_energy_joules(self):
        assert format_energy(190.1) == "190.1 J"

    def test_energy_kj(self):
        assert format_energy(13744.3) == "13.74 kJ"

    def test_energy_wh(self):
        assert "Wh" in format_energy(1_000_000)

    def test_power_milliwatts(self):
        assert format_power(0.62) == "620 mW"

    def test_power_watts(self):
        assert format_power(2.14) == "2.14 W"
