"""Tests for repro.util.tabulate."""

import pytest

from repro.util.tabulate import render_kv, render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["A", "B"], [(1, 2), (3, 4)])
        lines = out.splitlines()
        assert len(lines) == 6  # sep, header, sep, 2 rows, sep
        assert "A" in lines[1] and "B" in lines[1]

    def test_title(self):
        out = render_table(["A"], [(1,)], title="My title")
        assert out.splitlines()[0] == "My title"

    def test_numeric_format(self):
        out = render_table(["E"], [(190.123,)], formats=[".1f"])
        assert "190.1" in out

    def test_string_cells_untouched_by_format(self):
        out = render_table(["E"], [("Total",)], formats=[".1f"])
        assert "Total" in out

    def test_none_cell_renders_empty(self):
        out = render_table(["A"], [(None,)])
        assert out  # no crash

    def test_row_arity_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [(1,)])

    def test_format_arity_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [(1, 2)], formats=[".1f"])

    def test_alignment_right_for_numeric(self):
        out = render_table(["Num"], [(7,), (100,)], formats=["d"])
        rows = [l for l in out.splitlines() if l.startswith("|")][1:]
        # Right-aligned: the short value is padded on the left to match "100".
        assert rows[0] == "|   7 |"
        assert rows[1] == "| 100 |"

    def test_column_width_fits_longest(self):
        out = render_table(["X"], [("short",), ("a much longer cell",)])
        widths = {len(l) for l in out.splitlines() if l}
        assert len(widths) == 1  # all lines equal width


class TestRenderKv:
    def test_basic(self):
        out = render_kv([("key", "value"), ("longer key", 3)], title="T")
        assert out.startswith("T")
        assert "key" in out and "value" in out

    def test_alignment(self):
        out = render_kv([("a", 1), ("abc", 2)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert render_kv([]) == ""
