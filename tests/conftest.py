"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audio.dataset import DatasetSpec, QueenDataset
from repro.core.routines import make_scenario
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny synthetic queen corpus shared across ML tests (session-cached)."""
    return QueenDataset(DatasetSpec.small(n_samples=60, clip_duration=1.0, seed=3))


@pytest.fixture(scope="session")
def small_features(small_dataset):
    """(mel-dB spectrograms, labels) for the tiny corpus."""
    mel = MelSpectrogram(SpectrogramConfig())
    return small_dataset.features(mel.db)


@pytest.fixture(scope="session")
def scenarios():
    """The four paper scenarios, fresh instances."""
    return {
        "edge_svm": make_scenario("edge", "svm"),
        "edge_cnn": make_scenario("edge", "cnn"),
        "cloud_svm": make_scenario("edge+cloud", "svm"),
        "cloud_cnn": make_scenario("edge+cloud", "cnn"),
    }
