"""Tests for repro.obs.metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("cycles")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)

    def test_to_dict(self):
        c = Counter("x")
        c.inc(2)
        assert c.to_dict() == {"type": "counter", "value": 2.0}


class TestGauge:
    def test_unset_is_none(self):
        assert Gauge("depth").value is None

    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        assert g.to_dict() == {"type": "gauge", "value": 1.5}


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("dur")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0 and h.max == 3.0

    def test_empty_histogram(self):
        h = Histogram("dur")
        assert h.mean == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None

    def test_power_of_two_buckets(self):
        h = Histogram("dur")
        h.record(0.5)   # bucket 0: <= 1
        h.record(1.0)   # bucket 0
        h.record(1.5)   # bucket 1: (1, 2]
        h.record(300.0)  # bucket 9: (256, 512]
        assert h.to_dict()["buckets"] == {"0": 2, "1": 1, "9": 1}

    @given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=50))
    def test_count_conserved_across_buckets(self, values):
        h = Histogram("x")
        for v in values:
            h.record(v)
        assert sum(h.to_dict()["buckets"].values()) == len(values)
        assert h.min == min(values) and h.max == max(values)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_to_dict_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        reg.histogram("c").record(2.0)
        d = reg.to_dict()
        assert list(d) == ["a", "b", "c"]
        assert d["b"]["type"] == "counter"
        assert reg.names() == ["a", "b", "c"]
