"""Tests for repro.obs.ledger (phase mapping + attribution + reconciliation)."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.account import EnergyAccount
from repro.obs.ledger import PHASES, PhaseLedger, phase_of


class TestPhaseOf:
    @pytest.mark.parametrize(
        "category,phase",
        [
            # client cycle tasks
            ("wake_collect", "sense"),
            ("collect_and_transfer", "sense"),  # bundled §IV routine, exact match
            ("queen_detection_svm", "infer"),
            ("fallback_infer_svm", "infer"),
            ("fallback_infer_cnn", "infer"),
            ("send_audio", "transfer"),
            ("send_results", "transfer"),
            ("send_retry_timeout", "retry"),
            ("send_aborted", "retry"),
            ("shutdown", "boot"),
            ("shutdown_a", "boot"),
            ("shutdown_b", "boot"),
            ("sleep", "sleep"),
            # server categories
            ("idle", "idle"),
            ("idle_collectwin", "idle"),
            ("down", "idle"),
            ("receive", "transfer"),
            ("receive_overlap", "transfer"),
            ("receive_retry", "retry"),
            ("service", "infer"),
            ("saturation_penalty", "infer"),
            # unmapped stays visible
            ("mystery_widget", "other"),
        ],
    )
    def test_known_categories(self, category, phase):
        assert phase_of(category) == phase

    def test_retry_prefixes_beat_plain_send_receive(self):
        # Ordering regression: "send_retry_timeout" startswith "send" too.
        assert phase_of("send_retry_timeout") == "retry"
        assert phase_of("receive_retry") == "retry"


class TestPhaseLedger:
    def test_add_and_totals(self):
        led = PhaseLedger()
        led.add("sense", 10.0, 64.0)
        led.add("sense", 5.0, 32.0)
        led.add("sleep", 1.0)
        assert led.energy_j("sense") == 15.0
        assert led.time_s("sense") == 96.0
        assert led.total_energy_j == 16.0

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            PhaseLedger().add("naps", 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseLedger().add("sense", -1.0)

    def test_charge_category_maps_and_weights(self):
        led = PhaseLedger()
        led.charge_category("send_audio", 2.0, 1.5, weight=3.0)
        assert led.energy_j("transfer") == 6.0
        assert led.time_s("transfer") == 4.5

    def test_charge_account_sums_to_account_total(self):
        acc = EnergyAccount("client")
        acc.charge("wake_collect", 131.8, 64.0)
        acc.charge("send_audio", 14.9, 10.0)
        acc.charge("sleep", 3.0, 200.0)
        led = PhaseLedger()
        led.charge_account(acc)
        assert led.total_energy_j == pytest.approx(acc.total)
        assert led.energy_j("sense") == pytest.approx(131.8)

    def test_charge_accounts_with_multiplicities(self):
        acc = EnergyAccount("rep")
        acc.charge("sleep", 1.0, 10.0)
        led = PhaseLedger()
        led.charge_accounts([acc, acc], weights=[3.0, 2.0])
        assert led.energy_j("sleep") == pytest.approx(5.0)
        assert led.time_s("sleep") == pytest.approx(50.0)

    def test_reconciles_default_true_without_total(self):
        assert PhaseLedger().reconciles()

    def test_reconciles_within_band(self):
        led = PhaseLedger()
        led.add("sense", 100.0)
        led.note_total(100.0 + 1e-7)
        assert led.reconciles()
        drifted = PhaseLedger()
        drifted.add("sense", 100.0)
        drifted.note_total(100.1)
        assert not drifted.reconciles()

    def test_note_total_accumulates_across_sweep_points(self):
        led = PhaseLedger()
        for _ in range(3):
            led.add("sense", 10.0)
            led.note_total(10.0)
        assert led.expected_total_j == 30.0
        assert led.reconciles()

    def test_reconciles_near_zero_uses_atol(self):
        led = PhaseLedger()
        led.note_total(5e-10)  # empty run: phase sum 0.0 vs epsilon total
        assert led.reconciles()

    def test_merge(self):
        a, b = PhaseLedger(), PhaseLedger()
        a.add("sense", 1.0, 2.0)
        b.add("sense", 3.0, 4.0)
        b.add("retry", 5.0)
        a.note_total(1.0)
        b.note_total(8.0)
        m = a.merge(b)
        assert m.energy_j("sense") == 4.0 and m.time_s("sense") == 6.0
        assert m.energy_j("retry") == 5.0
        assert m.expected_total_j == 9.0
        assert m.reconciles()

    def test_to_dict_covers_all_phases(self):
        d = PhaseLedger().to_dict()
        assert set(d["phases"]) == set(PHASES)
        assert d["reconciles"] is True

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["wake_collect", "send_audio", "service", "idle", "zzz"]),
                st.floats(min_value=0.0, max_value=1e6),
            ),
            max_size=20,
        )
    )
    def test_phase_sum_equals_charged_sum(self, charges):
        led = PhaseLedger()
        total = 0.0
        for category, energy in charges:
            led.charge_category(category, energy)
            total += energy
        led.note_total(total)
        assert led.reconciles()
