"""Tests for repro.obs.trace."""

import pytest

from repro.obs.trace import Span, Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpan:
    def test_duration(self):
        assert Span("x", start=1.0, end=3.5).duration == 2.5

    def test_open_span_has_no_duration(self):
        with pytest.raises(ValueError, match="still open"):
            Span("x", start=1.0).duration

    def test_to_dict_omits_empty_fields(self):
        assert Span("x", 0.0, 1.0).to_dict() == {"name": "x", "start": 0.0, "end": 1.0}
        d = Span("x", 0.0, 1.0, parent=2, attrs={"k": 1}).to_dict()
        assert d["parent"] == 2 and d["attrs"] == {"k": 1}


class TestTracer:
    def test_span_records_clock_times(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("cycle"):
            clock.t = 5.0
        (span,) = tr.spans
        assert span.start == 0.0 and span.end == 5.0

    def test_labels_join_onto_name(self):
        tr = Tracer()
        with tr.span("slot", 3):
            pass
        assert tr.spans[0].name == "slot:3"

    def test_nesting_sets_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        outer, inner = tr.spans
        assert outer.parent is None
        assert inner.parent == 0

    def test_span_closes_on_exception(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tr.span("x"):
                clock.t = 2.0
                raise RuntimeError("boom")
        assert tr.spans[0].end == 2.0

    def test_record_posthoc_span(self):
        tr = Tracer()
        idx = tr.record("cycle", 0.0, 300.0, n=40)
        child = tr.record("slot", 0.0, 30.0, parent=idx)
        assert tr.spans[idx].attrs == {"n": 40}
        assert tr.spans[child].parent == idx

    def test_record_rejects_negative_interval(self):
        with pytest.raises(ValueError, match="ends before"):
            Tracer().record("x", 2.0, 1.0)

    def test_record_inherits_open_span_as_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            idx = tr.record("inner", 0.0, 1.0)
        assert tr.spans[idx].parent == 0

    def test_overflow_drops_and_counts(self):
        tr = Tracer(max_spans=2)
        for i in range(5):
            tr.record("s", 0.0, 1.0)
        assert len(tr) == 2
        assert tr.dropped == 3
        assert tr.to_dict()["dropped"] == 3

    def test_overflow_inside_context_is_safe(self):
        tr = Tracer(max_spans=1)
        with tr.span("a"):
            with tr.span("b"):  # dropped
                pass
        assert len(tr) == 1 and tr.dropped == 1

    def test_set_clock_swaps_mid_run(self):
        tr = Tracer()
        clock = FakeClock()
        clock.t = 7.0
        tr.set_clock(clock)
        assert tr.now() == 7.0

    def test_phase_names_strip_labels(self):
        tr = Tracer()
        tr.record("slot:1", 0, 1)
        tr.record("slot:2", 1, 2)
        tr.record("cycle", 0, 2)
        assert tr.phase_names() == ["cycle", "slot"]

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)
