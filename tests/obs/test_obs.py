"""Tests for the Obs facade, ambient switch and snapshot schema."""

import json

from repro.obs import (
    SCHEMA_VERSION,
    Obs,
    build_snapshot,
    current,
    dump_snapshot,
    observing,
    resolve,
    set_current,
)


class TestAmbientSwitch:
    def test_off_by_default(self):
        assert current() is None
        assert resolve(None) is None

    def test_explicit_wins_over_ambient(self):
        ambient, explicit = Obs(), Obs()
        with observing(ambient):
            assert resolve(None) is ambient
            assert resolve(explicit) is explicit
        assert resolve(None) is None

    def test_observing_restores_previous(self):
        outer, inner = Obs(), Obs()
        with observing(outer):
            with observing(inner):
                assert current() is inner
            assert current() is outer

    def test_set_current_roundtrip(self):
        obs = Obs()
        set_current(obs)
        try:
            assert current() is obs
        finally:
            set_current(None)
        assert current() is None


class TestSnapshot:
    def _populated(self):
        obs = Obs()
        obs.metrics.counter("cycles").inc(3)
        with obs.trace.span("run"):
            pass
        obs.ledger.add("sense", 10.0, 64.0)
        obs.ledger.note_total(10.0)
        return obs

    def test_schema_version_present(self):
        snap = self._populated().snapshot()
        assert snap["schema_version"] == SCHEMA_VERSION
        assert set(snap) == {"schema_version", "metrics", "trace", "ledger"}

    def test_extra_run_metadata(self):
        snap = build_snapshot(self._populated(), extra={"experiment": "fig7"})
        assert snap["run"] == {"experiment": "fig7"}

    def test_snapshot_is_json_serializable(self, tmp_path):
        path = tmp_path / "obs.json"
        with open(path, "w") as fh:
            dump_snapshot(self._populated(), fh, extra={"seed": 0})
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["metrics"]["cycles"]["value"] == 3
        assert payload["ledger"]["reconciles"] is True
        assert payload["trace"]["n_spans"] == 1

    def test_obs_clock_flows_to_tracer(self):
        t = [0.0]
        obs = Obs(clock=lambda: t[0])
        with obs.trace.span("x"):
            t[0] = 9.0
        assert obs.trace.spans[0].end == 9.0
