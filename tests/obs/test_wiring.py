"""Integration tests: every instrumented entry point reconciles its ledger.

The tentpole contract (ISSUE 4): with a collector attached, each run's
per-phase energy attribution sums to the run's independently computed total
within 1e-6 relative, the span tree covers every phase the run exercised,
and with no collector the instrumentation is a no-op.
"""

import numpy as np
import pytest

from repro.core.dessim import run_des_fleet
from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.core.sweep import sweep_clients
from repro.faults import FaultConfig, ServerOutage, run_des_faulty_fleet
from repro.faults.config import LinkBlackout
from repro.faults.fleetsim import run_faulty_fleet
from repro.obs import Obs, observing


@pytest.fixture(scope="module")
def cloud():
    return make_scenario("edge+cloud", "svm", max_parallel=35)


@pytest.fixture(scope="module")
def faults():
    return FaultConfig(
        server_outage=ServerOutage(mtbf_s=1800.0, repair_s=300.0),
        link_blackout=LinkBlackout(mtbf_s=3600.0, repair_s=120.0),
    )


def _span_names(obs):
    return {s.name for s in obs.trace.spans}


def _assert_reconciles(obs, total):
    ledger = obs.ledger
    assert ledger.reconciles(rtol=1e-6, atol=1e-9)
    assert ledger.expected_total_j == pytest.approx(total, rel=1e-12)
    assert ledger.total_energy_j == pytest.approx(total, rel=1e-6)


class TestSimulateFleet:
    def test_reconciles_and_traces(self, cloud):
        obs = Obs()
        r = simulate_fleet(120, cloud, obs=obs)
        _assert_reconciles(obs, r.total_energy_j)
        names = _span_names(obs)
        assert "fleet_cycle" in names
        assert {"phase:sense", "phase:infer", "phase:transfer", "phase:sleep",
                "phase:idle"} <= names
        assert obs.metrics.counter("fleet.runs").value == 1
        assert obs.metrics.counter("fleet.clients_active").value == 120

    def test_nothing_attributed_to_other(self, cloud):
        obs = Obs()
        simulate_fleet(50, cloud, obs=obs)
        assert obs.ledger.energy_j("other") == 0.0


class TestSweep:
    def test_reconciles_over_whole_sweep(self, cloud):
        obs = Obs()
        r = sweep_clients(np.arange(0, 200, 7), cloud, obs=obs)
        _assert_reconciles(obs, float(r.total_energy_j.sum()))


class TestDesFleet:
    @pytest.mark.parametrize("cohort", [False, True])
    def test_reconciles(self, cloud, cohort):
        obs = Obs()
        r = run_des_fleet(50, cloud, n_cycles=2, cohort=cohort, obs=obs)
        _assert_reconciles(obs, r.total_energy_j)
        assert "des_fleet" in _span_names(obs)
        assert obs.metrics.counter("des.events_fired").value > 0
        assert obs.metrics.histogram("des.events_per_run").count == 1

    def test_cohort_and_per_client_attribute_identically(self, cloud):
        totals = {}
        for cohort in (False, True):
            obs = Obs()
            run_des_fleet(50, cloud, n_cycles=2, cohort=cohort, obs=obs)
            totals[cohort] = obs.ledger.total_energy_j
        assert totals[False] == pytest.approx(totals[True], rel=1e-12)


class TestFaultPaths:
    @pytest.mark.parametrize("cohort", [False, True])
    def test_des_faulty_reconciles(self, cloud, faults, cohort):
        obs = Obs()
        r = run_des_faulty_fleet(
            60, cloud, faults=faults, n_cycles=4, seed=3, cohort=cohort, obs=obs
        )
        _assert_reconciles(obs, r.total_energy_j)
        assert "des_faulty_fleet" in _span_names(obs)
        assert (
            obs.metrics.counter("faults.cycles_expected").value
            == r.report.cycles_expected
        )
        assert obs.metrics.gauge("faults.availability").value == r.availability

    def test_des_faulty_retry_phase_populated(self, cloud, faults):
        # Probed: seed 4 burns retry timeouts under this config.
        obs = Obs()
        run_des_faulty_fleet(40, cloud, faults=faults, n_cycles=3, seed=4, obs=obs)
        assert obs.ledger.energy_j("retry") > 0.0
        assert "phase:retry" in _span_names(obs)

    def test_analytic_faulty_reconciles(self, cloud, faults):
        obs = Obs()
        r = run_faulty_fleet(60, cloud, faults=faults, n_cycles=4, seed=3, obs=obs)
        _assert_reconciles(obs, r.total_energy_j)
        assert "faulty_fleet" in _span_names(obs)

    def test_analytic_edge_only_reconciles(self):
        edge = make_scenario("edge", "svm")
        obs = Obs()
        r = run_faulty_fleet(30, edge, faults=FaultConfig.none(), n_cycles=3, obs=obs)
        _assert_reconciles(obs, r.total_energy_j)


class TestAmbientCollector:
    def test_observing_covers_all_paths(self, cloud, faults):
        obs = Obs()
        with observing(obs):
            r1 = simulate_fleet(40, cloud)
            r2 = run_des_fleet(20, cloud)
            r3 = run_faulty_fleet(20, cloud, faults=faults, seed=1)
        total = r1.total_energy_j + r2.total_energy_j + r3.total_energy_j
        _assert_reconciles(obs, total)
        assert obs.metrics.counter("fleet.runs").value == 2  # analytic paths
        assert obs.metrics.counter("des.runs").value == 1

    def test_no_collector_records_nothing(self, cloud):
        fresh = Obs()
        simulate_fleet(40, cloud)  # no obs anywhere
        assert len(fresh.metrics) == 0
        assert fresh.trace.spans == []
