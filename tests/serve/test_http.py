"""Integration tests: a real ``repro-serve`` subprocess behind HTTP.

Boots the server the same way CI's serve-smoke job does (ephemeral port,
``--port-file`` handshake, trace/obs artifacts) but with a load about 10×
smaller than the canonical :data:`repro.serve.smoke.SMOKE_SPEC` so the
whole module stays in the low seconds.  The full-size run is exercised by
``python -m repro.serve.smoke --http`` in CI and by the serve-trace golden.
"""

import json
import signal
import subprocess
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import HttpTransport, replay, replay_in_process
from repro.serve.smoke import _boot_server

SMALL_SPEC = LoadSpec(
    n_hives=12,
    rate_hz=0.02,
    horizon_s=600.0,
    telemetry_fraction=0.5,
    payload_bytes=512,
    seed=0xBEE5,
    mode="open",
)


@pytest.fixture()
def server(tmp_path):
    proc, url, trace_out, obs_out = _boot_server(tmp_path)
    try:
        yield proc, url, trace_out, obs_out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def shutdown(proc) -> str:
    """SIGTERM the server and return its stdout (the final report JSON)."""
    proc.send_signal(signal.SIGTERM)
    stdout, _ = proc.communicate(timeout=30)
    assert proc.returncode == 0, f"server exited {proc.returncode} on SIGTERM"
    return stdout.decode()


class TestLifecycle:
    def test_health_then_graceful_sigterm(self, server):
        proc, url, trace_out, obs_out = server
        health = HttpTransport(url).health()
        assert health["ok"] is True
        assert health["fleet"] == 0
        stdout = shutdown(proc)
        # shutdown flushed both artifacts and printed the report; the health
        # probe itself counts (every handled request does, since the
        # accounting fix) and must not register as an error
        report = json.loads(stdout)
        assert report["requests"] == 1
        assert report["errors"] == 0
        assert report["shutdown_signal"] == signal.SIGTERM
        assert trace_out.exists() and obs_out.exists()

    def test_obs_snapshot_flushed_on_sigterm(self, server):
        proc, url, trace_out, obs_out = server
        t = HttpTransport(url)
        t.send({"op": "admit", "hive": 1, "t": 0.0})
        t.send({"op": "inference", "hive": 1, "t": 5.0})
        shutdown(proc)
        snap = json.loads(obs_out.read_text())
        assert snap["schema_version"] >= 1
        assert snap["metrics"]["serve.requests"]["value"] == 2.0
        assert snap["run"]["kind"] == "serve"
        assert snap["run"]["report"]["requests"] == 2
        trace = json.loads(trace_out.read_text())
        assert trace["n_events"] == 2
        assert len(trace["events"]) == 2

    def test_unknown_route_404_and_bad_json_400(self, server):
        proc, url, _trace, _obs = server
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{url}/v1/frobnicate", data=b"{}", timeout=10)
        assert exc.value.code == 404
        req = urllib.request.Request(
            f"{url}/v1/admit", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_engine_error_is_422_with_body(self, server):
        proc, url, _trace, _obs = server
        t = HttpTransport(url)
        t.send({"op": "admit", "hive": 7, "t": 0.0})
        r = t.send({"op": "admit", "hive": 7, "t": 1.0})
        assert r["ok"] is False and "allocated twice" in r["error"]


class TestReplayOverHttp:
    def test_http_replay_matches_in_process_bit_for_bit(self, server):
        proc, url, trace_out, _obs = server
        report = replay(SMALL_SPEC, HttpTransport(url))
        assert report.n_errors == 0
        _engine, local = replay_in_process(SMALL_SPEC)
        assert report.n_requests == local.n_requests
        assert report.response_sha256 == local.response_sha256
        shutdown(proc)
        trace = json.loads(trace_out.read_text())
        assert trace["sha256"] == _engine.trace.fingerprint()

    def test_trace_is_deterministic_across_server_runs(self, tmp_path):
        def one_run(sub):
            d = tmp_path / sub
            d.mkdir()
            proc, url, trace_out, _obs = _boot_server(d)
            try:
                report = replay(SMALL_SPEC, HttpTransport(url))
                assert report.n_errors == 0
                shutdown(proc)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            return json.loads(trace_out.read_text())["sha256"]

        assert one_run("a") == one_run("b")


class TestGolden:
    def test_smoke_fingerprint_matches_committed_golden(self):
        from repro.serve.smoke import smoke_fingerprint
        from repro.validate.golden import diff_fingerprints, load_golden

        golden_dir = Path(__file__).resolve().parents[1] / "golden"
        stored = load_golden("serve-trace", golden_dir)
        drifts = diff_fingerprints(stored["fingerprint"], smoke_fingerprint())
        assert not drifts, f"serve-trace drifted: {drifts}"

    def test_smoke_main_gates_green(self):
        from repro.serve.smoke import main

        assert main([]) == 0


class TestCliFlags:
    def test_bad_policy_exits_nonzero(self):
        import os
        import sys

        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve.cli", "--policy", "nope", "--port", "0"],
            capture_output=True,
            env=env,
            timeout=30,
        )
        assert proc.returncode != 0
        assert b"policy" in proc.stderr
