"""Live-path resilience: fault injection, shedding, crash recovery.

Covers the serving layer's survival story end to end — the compiled fault
timetable, mid-replay server death and repack, dark-window buffering,
deterministic overload shedding with the ``offered == served + shed +
errored`` conservation partition, and the checkpoint/resume round trip —
plus two Hypothesis nets: conservation under arbitrary request
interleavings, and live-equals-batch-fold across every placement policy
under fail/repack/recover churn.
"""

import dataclasses
import json
import math
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import POLICY_KINDS
from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import SHED, replay_in_process
from repro.resilience.errors import CheckpointError
from repro.serve.checkpoint import (
    ServeCheckpointer,
    restore_engine,
    resume_engine,
    save_engine,
    snapshot_engine,
)
from repro.serve.engine import OrchestrationEngine, ServeConfig
from repro.serve.faults import SERVER_FAIL, SERVER_RECOVER, ServeFaultSpec
from repro.serve.http import drain_pending, make_server
from repro.validate import ServeConservation
from repro.validate.invariants import run_checkers

FAULTS = ServeFaultSpec(
    server_mtbf_s=150.0,
    server_repair_s=60.0,
    fault_servers=3,
    dark_mtbf_s=200.0,
    dark_repair_s=80.0,
    fault_hives=6,
    horizon_s=1200.0,
    seed=7,
)

LOAD = LoadSpec(
    n_hives=12,
    rate_hz=0.02,
    horizon_s=1200.0,
    telemetry_fraction=0.5,
    payload_bytes=1024,
    seed=0xFA01,
    mode="open",
)


class TestFaultSpec:
    def test_inactive_by_default(self):
        spec = ServeFaultSpec()
        assert spec.active is False
        assert spec.compile().transitions == ()

    def test_active_when_any_process_can_fire(self):
        assert FAULTS.active is True
        assert ServeFaultSpec(server_mtbf_s=100.0, fault_servers=0).active is False
        assert ServeFaultSpec(dark_mtbf_s=100.0, fault_hives=2).active is True

    def test_describe_renders_inf_and_round_trips_json(self):
        d = ServeFaultSpec().describe()
        assert d["server_mtbf_s"] == "inf" and d["dark_mtbf_s"] == "inf"
        assert json.loads(json.dumps(d, sort_keys=True)) == d

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ServeFaultSpec(server_mtbf_s=0.0)
        with pytest.raises(ValueError):
            ServeFaultSpec(fault_servers=-1)
        with pytest.raises(ValueError):
            ServeFaultSpec(horizon_s=0.0)

    def test_transitions_sorted_and_paired_with_point_queries(self):
        compiled = FAULTS.compile()
        times = [t for t, *_ in compiled.transitions]
        assert times == sorted(times)
        assert any(k == SERVER_FAIL for _, _, k, _ in compiled.transitions)
        assert any(k == SERVER_RECOVER for _, _, k, _ in compiled.transitions)
        # just after a fail (and before its recover) the server reads down
        for when, _target, kind, server in compiled.transitions:
            if kind == SERVER_FAIL:
                assert compiled.server_down(server, when + 1e-6)
                break

    def test_compile_is_deterministic(self):
        assert FAULTS.compile().transitions == FAULTS.compile().transitions
        reseeded = dataclasses.replace(FAULTS, seed=FAULTS.seed + 1)
        assert reseeded.compile().transitions != FAULTS.compile().transitions


def _first_fail(compiled):
    return next(
        (when, server)
        for when, _t, kind, server in compiled.transitions
        if kind == SERVER_FAIL
    )


class TestFaultInjection:
    N_HIVES = 40  # with max_parallel=1 (18 slots/server) this spans servers 0-2

    def test_server_failure_repacks_and_stays_the_batch_fold(self):
        # The repack does not shun the dead index — the retry ladder covers
        # requests aimed at it — but every orphan must be accounted for and
        # the layout must remain the canonical fold over admission order.
        spec = dataclasses.replace(FAULTS, dark_mtbf_s=math.inf, fault_hives=0)
        engine = OrchestrationEngine(ServeConfig(max_parallel=1, faults=spec))
        fail_t, failed = _first_fail(spec.compile())
        for hive in range(self.N_HIVES):
            engine.handle({"op": "admit", "hive": hive, "t": 0.0})
        assert any(
            engine.live.placement_of(h).server == failed for h in range(self.N_HIVES)
        ), "fleet never reached the failing server — fix the fixture"
        engine.handle({"op": "telemetry", "hive": 0, "t": fail_t + 1.0})
        assert failed in engine._down_servers
        fails = [e for e in engine.trace.events if e["op"] == "server-fail"]
        assert fails and fails[0]["server"] == failed
        assert fails[0]["orphans"] >= 1
        assert fails[0]["orphans"] == fails[0]["readmitted"] + fails[0]["dropped"]
        assert engine.report()["failed_servers"] == [failed]
        assert engine.steady_state_matches_batch()

    def test_recovery_clears_the_down_flag(self):
        spec = dataclasses.replace(FAULTS, dark_mtbf_s=math.inf, fault_hives=0)
        compiled = spec.compile()
        fail_t, failed = _first_fail(compiled)
        recover_t = next(
            when for when, _t, kind, server in compiled.transitions
            if kind == SERVER_RECOVER and server == failed and when > fail_t
        )
        engine = OrchestrationEngine(ServeConfig(faults=spec))
        engine.handle({"op": "telemetry", "hive": 0, "t": fail_t + 1.0})
        assert failed in engine._down_servers
        engine.handle({"op": "telemetry", "hive": 0, "t": recover_t + 1.0})
        assert failed not in engine._down_servers
        ops = [e["op"] for e in engine.trace.events]
        assert "server-recover" in ops

    def test_inference_at_down_server_walks_the_retry_ladder(self):
        spec = dataclasses.replace(FAULTS, dark_mtbf_s=math.inf, fault_hives=0)
        engine = OrchestrationEngine(ServeConfig(max_parallel=1, faults=spec))
        fail_t, failed = _first_fail(spec.compile())
        # Apply the failure while the fleet is empty (a not-yet-allocated
        # server index cannot be repacked), then admit a fleet wide enough
        # that placements land on the already-down server: its inference
        # must walk the retry ladder.
        t = fail_t + 0.5
        engine.handle({"op": "telemetry", "hive": 99, "t": t})
        assert failed in engine._down_servers
        victim = None
        for hive in range(self.N_HIVES):
            r = engine.handle({"op": "admit", "hive": hive, "t": t})
            if r["admitted"] and r["server"] == failed:
                victim = hive
                break
        assert victim is not None
        response = engine.handle({"op": "inference", "hive": victim, "t": t})
        assert response["ok"] is True
        assert response["retries"] >= 1
        assert response["retry_energy_j"] > 0.0
        assert engine.obs.ledger.energy_j("retry") == pytest.approx(
            response["retry_energy_j"]
        )
        # rescued mid-ladder onto the cloud, or exhausted onto the edge
        if response["placement"] == "edge":
            assert response["reason"] == "server-down"

    def test_full_replay_under_faults_conserves_and_matches_batch(self):
        engine = OrchestrationEngine(ServeConfig(faults=FAULTS))
        _, client = replay_in_process(LOAD, engine)
        assert client.unexpected_classes(()) == {}  # faults never leak errors
        report = engine.report()  # conservation checker runs inside
        assert report["offered"] == report["served"] + report["shed"] + report["errored"]
        assert report["shed"] == 0  # no queue bound configured
        ops = {e["op"] for e in engine.trace.events}
        assert "server-fail" in ops
        assert engine.steady_state_matches_batch()


class TestDarkWindows:
    @pytest.fixture(scope="class")
    def dark_point(self):
        """(hive, t) inside a realized blackout window."""
        compiled = FAULTS.compile()
        for hive in range(FAULTS.fault_hives):
            for t in range(0, int(FAULTS.horizon_s), 5):
                if compiled.hive_dark(hive, float(t)):
                    return hive, float(t)
        pytest.fail("seed realized no dark window — fix the fixture")

    def test_dark_telemetry_is_buffered_with_zero_radio(self, dark_point):
        hive, t = dark_point
        engine = OrchestrationEngine(ServeConfig(faults=FAULTS))
        before = engine.obs.ledger.energy_j("transfer")
        r = engine.handle({"op": "telemetry", "hive": hive, "t": t, "bytes": 512})
        assert r["ok"] is True and r["buffered"] is True
        assert engine.obs.ledger.energy_j("transfer") == before  # radio stayed off
        assert engine._buffers[hive].resident_payloads == 1

    def test_dark_inference_degrades_to_edge(self, dark_point):
        hive, t = dark_point
        engine = OrchestrationEngine(ServeConfig(faults=FAULTS))
        engine.handle({"op": "admit", "hive": hive, "t": 0.0})
        r = engine.handle({"op": "inference", "hive": hive, "t": t})
        assert r["placement"] == "edge"
        assert r["reason"] == "link-dark"

    def test_reconnected_hive_drains_its_backlog_at_a_price(self, dark_point):
        hive, t = dark_point
        compiled = FAULTS.compile()
        engine = OrchestrationEngine(ServeConfig(faults=FAULTS))
        engine.handle({"op": "telemetry", "hive": hive, "t": t, "bytes": 512})
        bright = next(
            float(u) for u in range(int(t) + 1, int(FAULTS.horizon_s))
            if not compiled.hive_dark(hive, float(u))
        )
        before = engine.obs.ledger.energy_j("transfer")
        engine.handle({"op": "telemetry", "hive": hive, "t": bright, "bytes": 512})
        drains = [e for e in engine.trace.events if e["op"] == "drain"]
        assert drains and drains[0]["hive"] == hive and drains[0]["payloads"] == 1
        assert engine.obs.ledger.energy_j("transfer") > before  # catch-up priced
        assert engine._buffers[hive].resident_payloads == 0


class TestShedding:
    def test_bad_queue_bound_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_bound=0)

    def test_telemetry_sheds_at_half_bound_inference_at_bound(self):
        engine = OrchestrationEngine(ServeConfig(queue_bound=2))
        engine.handle({"op": "admit", "hive": 0, "t": 0.0})
        first = engine.handle({"op": "inference", "hive": 0, "t": 0.0})
        assert first["ok"] is True  # depth 0 < 2
        shed_tel = engine.handle({"op": "telemetry", "hive": 0, "t": 1.0})
        assert shed_tel["shed"] is True  # depth 1 >= (2+1)//2
        assert shed_tel["ok"] is False
        second = engine.handle({"op": "inference", "hive": 0, "t": 2.0})
        assert second["ok"] is True  # depth 1 < 2
        shed_inf = engine.handle({"op": "inference", "hive": 0, "t": 3.0})
        assert shed_inf["shed"] is True  # depth 2 >= 2
        assert shed_inf["queue_depth"] == 2
        assert shed_inf["retry_after_s"] > 0.0
        # conservation partition: 5 offered = 3 served + 2 shed + 0 errored
        assert (engine.n_offered, engine.n_served, engine.n_shed,
                engine.n_errored) == (5, 3, 2, 0)
        run_checkers(engine, [ServeConservation()], {"path": "test"})

    def test_health_reports_degraded_at_the_bound(self):
        engine = OrchestrationEngine(ServeConfig(queue_bound=1))
        assert engine.handle({"op": "health"})["status"] == "up"
        engine.handle({"op": "admit", "hive": 0, "t": 0.0})
        engine.handle({"op": "inference", "hive": 0, "t": 0.0})
        health = engine.handle({"op": "health"})
        assert health["status"] == "degraded"
        assert health["queue_depth"] == 1
        # health probes are never offered: the partition ignores them
        assert engine.n_offered == 2

    def test_queue_drains_as_time_passes(self):
        engine = OrchestrationEngine(ServeConfig(queue_bound=1))
        engine.handle({"op": "admit", "hive": 0, "t": 0.0})
        done = engine.handle({"op": "inference", "hive": 0, "t": 0.0})["done_t"]
        assert engine.handle({"op": "inference", "hive": 0, "t": 1.0})["shed"] is True
        late = engine.handle({"op": "inference", "hive": 0, "t": done + 1.0})
        assert late.get("shed") is None and late["ok"] is True

    def test_unbounded_engine_never_sheds(self):
        engine = OrchestrationEngine(ServeConfig())
        engine.handle({"op": "admit", "hive": 0, "t": 0.0})
        for i in range(10):
            r = engine.handle({"op": "inference", "hive": 0, "t": float(i + 1)})
            assert r["ok"] is True
        assert engine.n_shed == 0


class TestCheckpoint:
    CONFIG = ServeConfig(policy="best-fit", queue_bound=8, faults=FAULTS)

    def test_snapshot_restore_round_trip_is_bit_identical(self):
        from repro.loadgen.replay import iter_requests

        requests = list(iter_requests(LOAD))
        cut = len(requests) // 2
        engine = OrchestrationEngine(self.CONFIG)
        for request in requests[:cut]:
            engine.handle(dict(request))
        clone = restore_engine(self.CONFIG, snapshot_engine(engine))
        assert clone.trace.fingerprint() == engine.trace.fingerprint()
        for request in requests[cut:]:
            a = engine.handle(dict(request))
            b = clone.handle(dict(request))
            assert a == b
        assert clone.trace.fingerprint() == engine.trace.fingerprint()
        assert clone.report() == engine.report()

    def test_save_resume_refuses_a_different_config(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        engine = OrchestrationEngine(self.CONFIG)
        engine.handle({"op": "admit", "hive": 0, "t": 0.0})
        save_engine(path, engine)
        resumed = resume_engine(path, self.CONFIG)
        assert resumed.trace.fingerprint() == engine.trace.fingerprint()
        other = dataclasses.replace(self.CONFIG, policy="first-fit")
        with pytest.raises(CheckpointError):
            resume_engine(path, other)

    def test_checkpointer_writes_on_cadence_and_flushes(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        engine = OrchestrationEngine(ServeConfig())
        engine.checkpointer = ServeCheckpointer(path, every=3)
        for i in range(7):
            engine.handle({"op": "telemetry", "hive": 0, "t": float(i)})
        assert engine.checkpointer.n_written == 2  # after requests 3 and 6
        engine.checkpointer.flush(engine)
        resumed = resume_engine(path, ServeConfig())
        assert resumed.n_requests == 7
        assert resumed.trace.fingerprint() == engine.trace.fingerprint()

    def test_restored_engine_resumes_fault_cursor_and_buffers(self):
        compiled = FAULTS.compile()
        fail_t, _failed = _first_fail(compiled)
        engine = OrchestrationEngine(ServeConfig(faults=FAULTS))
        dark = next(
            (h, float(t))
            for h in range(FAULTS.fault_hives)
            for t in range(int(fail_t) + 1, int(FAULTS.horizon_s), 5)
            if compiled.hive_dark(h, float(t))
        )
        engine.handle({"op": "telemetry", "hive": dark[0], "t": dark[1], "bytes": 256})
        clone = restore_engine(ServeConfig(faults=FAULTS), snapshot_engine(engine))
        assert clone._fault_cursor == engine._fault_cursor
        assert clone._down_servers == engine._down_servers
        assert clone._buffers[dark[0]].resident_payloads == 1


class TestPropertyNets:
    @settings(max_examples=30, deadline=None)
    @given(
        bound=st.integers(min_value=1, max_value=4),
        steps=st.lists(
            st.tuples(
                st.sampled_from(["admit", "release", "telemetry", "inference", "health"]),
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        ),
    )
    def test_conservation_under_arbitrary_interleavings(self, bound, steps):
        """offered == served + shed + errored for every request soup."""
        engine = OrchestrationEngine(ServeConfig(queue_bound=bound))
        t = 0.0
        n_health = 0
        for op, hive, dt in steps:
            t += dt
            n_health += op == "health"
            engine.handle({"op": op, "hive": hive, "t": t})
        assert engine.n_offered == len(steps) - n_health
        assert engine.n_offered == engine.n_served + engine.n_shed + engine.n_errored
        run_checkers(engine, [ServeConservation()], {"path": "property"})

    @settings(max_examples=21, deadline=None)
    @given(
        policy=st.sampled_from(POLICY_KINDS),
        seed=st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_live_matches_batch_fold_under_fail_repack_recover(self, policy, seed):
        """After any fault churn, the live layout equals the batch fold."""
        spec = dataclasses.replace(FAULTS, seed=seed)
        engine = OrchestrationEngine(ServeConfig(policy=policy, faults=spec))
        t = 0.0
        for hive in range(10):
            engine.handle({"op": "admit", "hive": hive, "t": t})
        # sweep the request clock across the whole fault horizon so every
        # transition (fail + repack, recover) is applied
        step = spec.horizon_s / 24.0
        for i in range(26):
            t += step
            engine.handle({"op": "inference", "hive": i % 10, "t": t})
        engine.handle({"op": "release", "hive": 3, "t": t})
        engine.handle({"op": "admit", "hive": 11, "t": t})
        assert engine.steady_state_matches_batch()
        assert engine.n_offered == engine.n_served + engine.n_shed + engine.n_errored


class TestDrainPending:
    def test_backlogged_connection_is_answered_not_dropped(self):
        engine = OrchestrationEngine(ServeConfig())
        server = make_server(engine, "127.0.0.1", 0)
        try:
            host, port = server.server_address
            body = json.dumps({"hive": 1, "t": 0.0}).encode()
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(
                    b"POST /v1/admit HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                # the accept loop never ran: only drain_pending can answer
                assert drain_pending(server, budget_s=5.0) == 1
                reply = sock.recv(65536)
            assert b"200" in reply.split(b"\r\n", 1)[0]
            assert engine.n_requests == 1 and engine.n_served == 1
        finally:
            server.server_close()

    def test_empty_backlog_drains_zero_quickly(self):
        engine = OrchestrationEngine(ServeConfig())
        server = make_server(engine, "127.0.0.1", 0)
        try:
            start = time.monotonic()
            assert drain_pending(server, budget_s=0.5) == 0
            assert time.monotonic() - start < 0.5
        finally:
            server.server_close()


def _boot_resilient_server(tmp: Path, *extra: str):
    """Start repro-serve with resilience flags on an ephemeral port."""
    port_file = tmp / "port"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve.cli",
            "--port", "0", "--port-file", str(port_file), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    deadline = time.monotonic() + 30.0
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"repro-serve exited early with {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("repro-serve did not write its port file in 30 s")
        time.sleep(0.05)
    return proc, f"http://127.0.0.1:{int(port_file.read_text().strip())}"


class TestHttpResilience:
    def test_shed_is_503_with_retry_after_and_degraded_health(self, tmp_path):
        proc, url = _boot_resilient_server(tmp_path, "--queue-bound", "1")
        try:
            def post(op, payload):
                req = urllib.request.Request(
                    f"{url}/v1/{op}",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                return urllib.request.urlopen(req, timeout=10)

            assert post("admit", {"hive": 0, "t": 0.0}).status == 200
            assert post("inference", {"hive": 0, "t": 0.0}).status == 200
            with pytest.raises(urllib.error.HTTPError) as exc:
                post("inference", {"hive": 0, "t": 1.0})
            assert exc.value.code == 503
            assert int(exc.value.headers["Retry-After"]) >= 1
            body = json.loads(exc.value.read())
            assert body["shed"] is True and body["retry_after_s"] > 0.0
            with urllib.request.urlopen(f"{url}/v1/health", timeout=10) as r:
                health = json.loads(r.read())
            assert health["status"] == "degraded"
            assert health["shed"] == 1 and health["served"] == 2
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            report = json.loads(stdout)
            assert report["offered"] == 3
            assert report["served"] + report["shed"] + report["errored"] == 3
            assert report["shed"] == 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_resume_without_checkpoint_flag_is_rejected(self):
        from repro.serve.cli import main

        assert main(["--resume"]) == 2
