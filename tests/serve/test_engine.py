"""Unit tests for the transport-free orchestration engine."""

import json

import pytest

from repro.core.calibration import PAPER
from repro.serve.engine import OrchestrationEngine, ServeConfig


def engine(**kwargs) -> OrchestrationEngine:
    return OrchestrationEngine(ServeConfig(**kwargs))


class TestConfig:
    def test_policy_aliases_normalize(self):
        assert ServeConfig(policy="FirstFit").policy == "first-fit"
        assert ServeConfig(policy="roundrobin").policy == "round-robin"
        assert ServeConfig(policy="bestfit").policy == "best-fit"
        assert ServeConfig(policy="solar").policy == "solar-budget"
        assert ServeConfig(policy="swarm").policy == "swarm-scored"

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ServeConfig(policy="worst-case")

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError, match="period"):
            ServeConfig(period=0.0)

    def test_describe_pins_the_full_engine_behaviour(self):
        desc = ServeConfig(policy="swarm-scored", policy_seed=7).describe()
        json.dumps(desc, sort_keys=True)  # JSON-safe throughout
        assert desc["policy"] == "swarm-scored"
        assert desc["policy_params"] == {
            "kind": "swarm-scored", "seed": 7, "evaporation": 0.5, "iterations": 3,
        }
        # the two fields the header used to omit: two engines priced by
        # different links or calibration constants must describe differently
        assert desc["link"] == {
            "nominal_bps": ServeConfig().link.nominal_bps,
            "cv": ServeConfig().link.cv,
            "handshake_s": ServeConfig().link.handshake_s,
        }
        assert desc["constants"]["svm_edge_j"] == PAPER.svm_edge_j
        assert desc["constants"]["send_audio_j"] == PAPER.send_audio_j


class TestAdmitRelease:
    def test_admit_reports_placement(self):
        e = engine()
        r = e.handle({"op": "admit", "hive": 4, "t": 0.0})
        assert r["ok"] and r["admitted"]
        assert (r["server"], r["slot"], r["position"]) == (0, 0, 0)

    def test_duplicate_admit_is_an_error_response(self):
        e = engine()
        e.handle({"op": "admit", "hive": 4, "t": 0.0})
        r = e.handle({"op": "admit", "hive": 4, "t": 1.0})
        assert not r["ok"] and "allocated twice" in r["error"]
        assert e.n_errors == 1

    def test_budget_exhaustion_is_a_polite_rejection(self):
        e = engine(max_servers=0)
        r = e.handle({"op": "admit", "hive": 1, "t": 0.0})
        assert r["ok"] and r["admitted"] is False
        assert "full" in r["reason"]
        assert e.n_errors == 0  # a rejection is an outcome, not an error

    def test_release_unknown_hive_errors(self):
        e = engine()
        r = e.handle({"op": "release", "hive": 9, "t": 0.0})
        assert not r["ok"] and "not admitted" in r["error"]

    def test_non_monotonic_time_rejected(self):
        e = engine()
        e.handle({"op": "admit", "hive": 0, "t": 10.0})
        r = e.handle({"op": "telemetry", "hive": 0, "t": 5.0})
        assert not r["ok"] and "non-monotonic" in r["error"]


class TestPlacementDecision:
    def test_admitted_hive_runs_in_the_cloud(self):
        e = engine()
        e.handle({"op": "admit", "hive": 0, "t": 0.0})
        r = e.handle({"op": "inference", "hive": 0, "t": 1.0})
        assert r["placement"] == "cloud"
        # client-side cost is the audio upload, not the local inference
        assert r["energy_j"] == PAPER.send_audio_j
        assert r["server_energy_j"] > 0.0

    def test_unadmitted_hive_falls_back_to_edge(self):
        e = engine()
        r = e.handle({"op": "inference", "hive": 3, "t": 0.0})
        assert r["placement"] == "edge" and r["reason"] == "not-admitted"
        assert r["energy_j"] == PAPER.svm_edge_j
        assert r["latency_s"] == PAPER.svm_edge_s

    def test_cloud_latency_waits_for_the_slot_window(self):
        e = engine()
        e.handle({"op": "admit", "hive": 0, "t": 0.0})
        r = e.handle({"op": "inference", "hive": 0, "t": 10.0})
        # hive 0 sits in slot 0: next occurrence is the t=300 cycle boundary
        assert r["done_t"] > 300.0
        assert r["latency_s"] == r["done_t"] - 10.0

    def test_back_to_back_requests_queue_a_full_cycle(self):
        e = engine()
        e.handle({"op": "admit", "hive": 0, "t": 0.0})
        r1 = e.handle({"op": "inference", "hive": 0, "t": 10.0})
        r2 = e.handle({"op": "inference", "hive": 0, "t": 11.0})
        assert r2["done_t"] == pytest.approx(r1["done_t"] + e.config.period)

    def test_telemetry_priced_on_the_link(self):
        e = engine()
        r = e.handle({"op": "telemetry", "hive": 5, "t": 0.0, "bytes": 2048})
        assert r["ok"] and r["bytes"] == 2048
        assert r["latency_s"] > 0 and r["energy_j"] > 0
        # deterministic link expectation: same bytes, same price
        r2 = e.handle({"op": "telemetry", "hive": 6, "t": 1.0, "bytes": 2048})
        assert r2["latency_s"] == r["latency_s"]


class TestObsAndReport:
    def test_metrics_and_ledger_accumulate(self):
        e = engine()
        e.handle({"op": "admit", "hive": 0, "t": 0.0})
        e.handle({"op": "telemetry", "hive": 0, "t": 1.0})
        e.handle({"op": "inference", "hive": 0, "t": 2.0})
        snap = e.obs.snapshot()
        assert snap["metrics"]["serve.requests"]["value"] == 3.0
        assert snap["metrics"]["serve.placements.cloud"]["value"] == 1.0
        assert json.dumps(snap, sort_keys=True)  # snapshot is valid JSON

    def test_latency_report_quantiles(self):
        e = engine()
        for h in range(5):
            e.handle({"op": "inference", "hive": h, "t": float(h)})
        rep = e.latency_report()
        assert rep["inference"]["count"] == 5
        assert rep["inference"]["p50_s"] == PAPER.svm_edge_s
        assert rep["rps"] == pytest.approx(5 / 4.0)

    def test_report_is_json_and_matches_state(self):
        e = engine()
        for h in range(7):
            e.handle({"op": "admit", "hive": h, "t": 0.0})
        e.handle({"op": "release", "hive": 3, "t": 1.0})
        report = e.report()
        json.dumps(report)
        assert report["fleet"] == 6
        assert sum(sum(o) for o in report["occupancies"]) == 6


class TestAccounting:
    """Every request counts exactly once — health and garbage included."""

    def test_health_and_malformed_requests_are_counted(self):
        e = engine()
        e.handle({"op": "health"})
        e.handle({"op": "admit", "hive": 0, "t": 0.0})
        e.handle({"op": "reboot", "hive": 0, "t": 1.0})  # unknown op
        e.handle({"op": "admit", "t": 2.0})  # missing hive
        e.handle({"op": "admit", "hive": 0, "t": 3.0})  # duplicate admit
        e.handle({"op": "health"})
        assert e.n_requests == 6
        assert e.n_errors == 3
        assert e.n_requests >= e.n_errors

    def test_per_op_counters_sum_to_the_request_count(self):
        e = engine()
        requests = [
            {"op": "health"},
            {"op": "admit", "hive": 0, "t": 0.0},
            {"op": "telemetry", "hive": 0, "t": 1.0},
            {"op": "inference", "hive": 0, "t": 2.0},
            {"op": "inference", "hive": 0, "t": 1.0},  # non-monotonic -> error
            {"op": "frobnicate"},  # unknown -> invalid bucket
            {},  # no op at all -> invalid bucket
            {"op": "release", "hive": 0, "t": 3.0},
        ]
        for r in requests:
            e.handle(r)
        metrics = e.obs.snapshot()["metrics"]
        assert metrics["serve.requests"]["value"] == float(len(requests))
        by_op = {
            op: metrics.get(f"serve.requests.{op}", {"value": 0.0})["value"]
            for op in ("admit", "release", "telemetry", "inference", "health", "invalid")
        }
        assert by_op == {
            "admit": 1.0, "release": 1.0, "telemetry": 1.0, "inference": 2.0,
            "health": 1.0, "invalid": 2.0,
        }
        assert sum(by_op.values()) == metrics["serve.requests"]["value"]
        assert e.n_requests == len(requests)
        assert e.n_errors == 3  # non-monotonic + two invalid ops

    def test_health_probe_reports_itself_in_the_request_count(self):
        e = engine()
        first = e.handle({"op": "health"})
        assert first["requests"] == 1  # the probe itself is request #1
        second = e.handle({"op": "health"})
        assert second["requests"] == 2
        assert e.n_errors == 0


class TestBatchIdentity:
    @pytest.mark.parametrize(
        "policy",
        ["first-fit", "round-robin", "balanced", "best-fit", "worst-fit",
         "solar-budget", "swarm-scored"],
    )
    def test_steady_state_matches_batch_after_churn(self, policy):
        e = engine(policy=policy)
        t = 0.0
        for h in range(40):
            e.handle({"op": "admit", "hive": h, "t": t})
        for h in range(0, 40, 3):
            t += 1.0
            e.handle({"op": "release", "hive": h, "t": t})
        for h in range(100, 110):
            t += 1.0
            e.handle({"op": "admit", "hive": h, "t": t})
        assert e.steady_state_matches_batch()

    def test_trace_fingerprint_deterministic(self):
        def run():
            e = engine()
            for h in range(10):
                e.handle({"op": "admit", "hive": h, "t": float(h)})
                e.handle({"op": "inference", "hive": h, "t": float(h) + 0.5})
            return e.trace.fingerprint()

        assert run() == run()
