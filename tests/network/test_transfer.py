"""Tests for transfer cost computation."""

import pytest

from repro.network.link import LinkModel
from repro.network.transfer import transfer_cost


class TestTransferCost:
    def test_both_endpoints_charged_same_duration(self):
        link = LinkModel(nominal_bps=10e6, cv=0.0, handshake_s=1.0)
        cost = transfer_cost(10_000_000, link, sender_watts=2.49, receiver_watts=68.8, rng=0)
        assert cost.duration_s == pytest.approx(9.0)
        assert cost.sender_energy_j == pytest.approx(2.49 * 9.0)
        assert cost.receiver_energy_j == pytest.approx(68.8 * 9.0)
        assert cost.total_energy_j == pytest.approx((2.49 + 68.8) * 9.0)

    def test_paper_audio_transfer_scale(self):
        """Table II: sending the audio takes 15 s at ~2.5 W -> ~37 J."""
        link = LinkModel(nominal_bps=20e6, cv=0.0, handshake_s=1.5)
        payload = int((15.0 - 1.5) * 20e6 / 8)  # payload that takes 15 s
        cost = transfer_cost(payload, link, sender_watts=37.3 / 15.0, rng=0)
        assert cost.duration_s == pytest.approx(15.0)
        assert cost.sender_energy_j == pytest.approx(37.3, rel=0.01)

    def test_zero_payload(self):
        link = LinkModel(nominal_bps=1e6, cv=0.0, handshake_s=0.5)
        cost = transfer_cost(0, link, sender_watts=1.0, rng=0)
        assert cost.duration_s == pytest.approx(0.5)

    def test_negative_power_rejected(self):
        link = LinkModel(nominal_bps=1e6)
        with pytest.raises(ValueError):
            transfer_cost(100, link, sender_watts=-1.0)
