"""Units for the renewal outage schedules (`repro.network.outage`)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.faults.schedule import compile_schedule
from repro.network.outage import (
    LINK_OUTAGE,
    IntervalDist,
    OutagePattern,
)
from repro.util.rng import make_rng


class TestIntervalDist:
    def test_fixed_samples_exactly(self):
        d = IntervalDist.fixed(42.0)
        assert d.sample(make_rng(0)) == 42.0
        assert d.mean_s == 42.0

    def test_exponential_mean(self):
        d = IntervalDist.exponential(100.0)
        rng = make_rng(1)
        draws = [d.sample(rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.1)
        assert d.mean_s == 100.0

    def test_uniform_bounds_and_mean(self):
        d = IntervalDist.uniform(10.0, 30.0)
        rng = make_rng(2)
        draws = [d.sample(rng) for _ in range(200)]
        assert all(10.0 <= x <= 30.0 for x in draws)
        assert d.mean_s == 20.0

    def test_lognormal_median_and_mean(self):
        d = IntervalDist.lognormal(3600.0, cv=0.5)
        rng = make_rng(3)
        draws = np.array([d.sample(rng) for _ in range(4000)])
        assert float(np.median(draws)) == pytest.approx(3600.0, rel=0.1)
        # mean = median * exp(sigma^2/2) with sigma^2 = log(1 + cv^2)
        assert d.mean_s == pytest.approx(3600.0 * math.sqrt(1.25), rel=1e-12)

    def test_lognormal_zero_cv_degenerates_to_median(self):
        d = IntervalDist.lognormal(50.0, cv=0.0)
        assert d.sample(make_rng(0)) == 50.0

    def test_infinite_sentinel(self):
        d = IntervalDist.infinite()
        assert d.sample(make_rng(0)) == math.inf
        assert d.mean_s == math.inf

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            IntervalDist.fixed(0.0)
        with pytest.raises(ValueError):
            IntervalDist.exponential(-1.0)
        with pytest.raises(ValueError):
            IntervalDist.uniform(30.0, 10.0)
        with pytest.raises(ValueError):
            IntervalDist.lognormal(10.0, cv=-0.5)
        with pytest.raises(ValueError):
            IntervalDist("weibull", 1.0)

    def test_describe(self):
        assert IntervalDist.fixed(60.0).describe() == "60s"
        assert IntervalDist.exponential(30.0).describe() == "exp(30s)"
        assert "U[1,2]" in IntervalDist.uniform(1.0, 2.0).describe()
        assert "cv=0.8" in IntervalDist.lognormal(10.0, cv=0.8).describe()
        assert IntervalDist.infinite().describe() == "inf"


class TestOutagePattern:
    def test_always_up_compiles_no_windows(self):
        p = OutagePattern.always_up()
        assert p.never_fires
        for seed in (0, 1, 99):
            assert p.compile_target(0, 86400.0, make_rng(seed)) == ()

    def test_fixed_duty_cycle_is_periodic(self):
        p = OutagePattern.duty_cycle(600.0, 200.0, jitter=False)
        windows = p.compile_target(0, 2400.0, make_rng(0))
        assert [(w.start, w.end) for w in windows] == [
            (600.0, 800.0),
            (1400.0, 1600.0),
            (2200.0, 2400.0),  # final window clamped at the horizon
        ]
        assert all(w.kind == LINK_OUTAGE for w in windows)

    def test_start_down_leads_with_a_window(self):
        p = OutagePattern(
            up=IntervalDist.fixed(600.0), down=IntervalDist.fixed(200.0), start_up=False
        )
        windows = p.compile_target(0, 1000.0, make_rng(0))
        assert windows[0].start == 0.0
        assert windows[0].end == 200.0

    def test_segments_tile_horizon_exactly(self):
        p = OutagePattern.duty_cycle(3600.0, 1200.0)
        segments = p.compile_segments(7 * 86400.0, make_rng(5))
        assert segments[0][1] == 0.0
        assert segments[-1][2] == 7 * 86400.0
        for (_, _, prev_end), (_, start, _) in zip(segments, segments[1:]):
            assert start == prev_end

    def test_same_rng_state_means_same_windows(self):
        p = OutagePattern.duty_cycle(3600.0, 1200.0)
        a = p.compile_target(3, 86400.0, make_rng(7))
        b = p.compile_target(3, 86400.0, make_rng(7))
        assert a == b

    def test_rejects_double_infinite(self):
        with pytest.raises(ValueError):
            OutagePattern(up=IntervalDist.infinite(), down=IntervalDist.infinite())

    def test_expected_uptime_fraction(self):
        assert OutagePattern.always_up().expected_uptime_fraction == 1.0
        p = OutagePattern.duty_cycle(1800.0, 600.0)
        assert p.expected_uptime_fraction == pytest.approx(0.75)

    def test_describe_names_the_kind(self):
        assert OutagePattern.always_up().describe() == "link_outage(off)"
        assert "starts down" in OutagePattern(
            up=IntervalDist.fixed(10.0), down=IntervalDist.fixed(5.0), start_up=False
        ).describe()


class TestScheduleIntegration:
    def test_compiles_through_the_fault_schedule(self):
        p = OutagePattern.duty_cycle(600.0, 200.0, jitter=False)
        schedule = compile_schedule([p], 2400.0, n_clients=3, seed=0)
        for cid in range(3):
            windows = schedule.windows_for(LINK_OUTAGE, cid)
            assert [(w.start, w.end) for w in windows] == [
                (600.0, 800.0),
                (1400.0, 1600.0),
                (2200.0, 2400.0),
            ]
            assert schedule.is_down(LINK_OUTAGE, cid, 700.0)
            assert not schedule.is_down(LINK_OUTAGE, cid, 100.0)

    def test_always_up_skips_rng_streams_but_changes_nothing(self):
        """The never-fires fast path in compile_schedule must not shift any
        other spec's windows (streams are keyed independently)."""
        from repro.faults.spec import ServerOutage

        srv = ServerOutage(mtbf_s=900.0, repair_s=240.0)
        with_idle = compile_schedule(
            [srv, OutagePattern.always_up()], 7200.0, n_servers=2, n_clients=40, seed=3
        )
        without = compile_schedule([srv], 7200.0, n_servers=2, n_clients=40, seed=3)
        assert with_idle.windows == without.windows

    def test_per_target_streams_differ_under_jitter(self):
        p = OutagePattern.duty_cycle(600.0, 200.0, jitter=True)
        schedule = compile_schedule([p], 86400.0, n_clients=2, seed=0)
        a = [(w.start, w.end) for w in schedule.windows_for(LINK_OUTAGE, 0)]
        b = [(w.start, w.end) for w in schedule.windows_for(LINK_OUTAGE, 1)]
        assert a != b
