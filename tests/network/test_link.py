"""Tests for the stochastic link model."""

import numpy as np
import pytest

from repro.network.link import LinkModel
from repro.network.wifi import WIFI_80211N_2G4, WIFI_80211N_5G, wifi_profile


class TestLinkModel:
    def test_deterministic_when_cv_zero(self, rng):
        link = LinkModel(nominal_bps=10e6, cv=0.0, handshake_s=1.0)
        sample = link.transfer(10_000_000, rng=0)
        assert sample.duration_s == pytest.approx(1.0 + 8.0)
        assert sample.throughput_bps == 10e6

    def test_median_throughput_near_nominal(self, rng):
        link = LinkModel(nominal_bps=20e6, cv=0.25)
        draws = link.sample_throughput(rng, size=5000)
        assert np.median(draws) == pytest.approx(20e6, rel=0.05)

    def test_cv_controls_spread(self, rng):
        tight = LinkModel(nominal_bps=20e6, cv=0.05).sample_throughput(rng, size=2000)
        wide = LinkModel(nominal_bps=20e6, cv=0.5).sample_throughput(np.random.default_rng(0), size=2000)
        assert np.std(np.log(wide)) > np.std(np.log(tight))

    def test_throughput_always_positive(self, rng):
        link = LinkModel(nominal_bps=1e6, cv=1.0)
        draws = link.sample_throughput(rng, size=1000)
        assert np.all(draws > 0)

    def test_transfer_duration_reproduces_section4(self):
        """§IV/§V: the per-cycle payload uploads in ~15 s with a σ of a few
        seconds driven by throughput variance."""
        from repro.network.wifi import PAPER_CYCLE_PAYLOAD_BYTES

        durations = [
            WIFI_80211N_2G4.transfer(PAPER_CYCLE_PAYLOAD_BYTES, rng=s).duration_s for s in range(400)
        ]
        assert float(np.median(durations)) == pytest.approx(15.0, rel=0.15)
        std = float(np.std(durations))
        assert 1.5 < std < 7.0  # paper: 3.5 s routine-duration spread

    def test_expected_duration_above_median(self):
        link = LinkModel(nominal_bps=10e6, cv=0.5, handshake_s=0.0)
        med = link.transfer(10_000_000, rng=0)
        assert link.expected_duration(10_000_000) < 8.0 / 1.0  # sanity: finite
        # Log-normal mean > median throughput -> expected duration < median-based.
        assert link.expected_duration(10_000_000) < 0.0 + 10_000_000 * 8 / 10e6

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(nominal_bps=0.0)
        with pytest.raises(ValueError):
            LinkModel(nominal_bps=1e6, cv=3.0)
        with pytest.raises(ValueError):
            LinkModel(nominal_bps=1e6).transfer(-1)


class TestWifiProfiles:
    def test_lookup(self):
        assert wifi_profile("2.4GHz") is WIFI_80211N_2G4
        assert wifi_profile("5GHz") is WIFI_80211N_5G

    def test_5ghz_faster(self):
        assert WIFI_80211N_5G.nominal_bps > WIFI_80211N_2G4.nominal_bps

    def test_unknown_band(self):
        with pytest.raises(ValueError):
            wifi_profile("60GHz")


class TestResolveRng:
    def test_rng_param_accepts_generator_and_seed(self):
        from repro.network.link import resolve_rng

        gen = np.random.default_rng(3)
        assert resolve_rng(rng=gen) is gen
        a = resolve_rng(rng=7).normal()
        b = resolve_rng(rng=7).normal()
        assert a == b

    def test_seed_alias_warns_but_works(self):
        from repro.network.link import resolve_rng

        with pytest.warns(DeprecationWarning, match="deprecated"):
            gen = resolve_rng(seed=7)
        assert gen.normal() == resolve_rng(rng=7).normal()

    def test_both_params_rejected(self):
        from repro.network.link import resolve_rng

        with pytest.raises(TypeError, match="not both"):
            resolve_rng(rng=1, seed=2)

    def test_transfer_seed_alias_matches_rng(self):
        link = LinkModel(nominal_bps=10e6, cv=0.25)
        with_rng = link.transfer(1_000_000, rng=11)
        with pytest.warns(DeprecationWarning):
            with_seed = link.transfer(1_000_000, seed=11)
        assert with_seed.duration_s == with_rng.duration_s

    def test_transfer_threads_live_generator(self):
        link = LinkModel(nominal_bps=10e6, cv=0.25)
        gen = np.random.default_rng(0)
        first = link.transfer(1_000_000, rng=gen)
        second = link.transfer(1_000_000, rng=gen)  # stream advances
        assert first.throughput_bps != second.throughput_bps
