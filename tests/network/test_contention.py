"""Tests for the slot-contention model (loss B from first principles)."""

import numpy as np
import pytest

from repro.network.contention import (
    fitted_loss_b_seconds_per_client,
    simulate_slot_contention,
    slot_transfer_time,
)
from repro.network.link import LinkModel


def quiet_link(bps=10e6, cv=0.0, handshake=0.0):
    return LinkModel(nominal_bps=bps, cv=cv, handshake_s=handshake)


class TestAnalytic:
    def test_linear_in_clients(self):
        t1 = slot_transfer_time(1_000_000, 1, 10e6)
        t5 = slot_transfer_time(1_000_000, 5, 10e6)
        assert t5 == pytest.approx(5 * t1)

    def test_single_client_baseline(self):
        assert slot_transfer_time(1_250_000, 1, 10e6) == pytest.approx(1.0)

    def test_overhead_term(self):
        t = slot_transfer_time(0, 4, 10e6, per_client_overhead_s=0.5)
        assert t == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_transfer_time(100, 0, 1e6)
        with pytest.raises(ValueError):
            slot_transfer_time(100, 1, 0.0)


class TestSimulation:
    def test_deterministic_matches_analytic(self):
        """With cv=0 and own rates >= fair share, processor sharing finishes
        everyone together at the analytic time."""
        link = quiet_link()
        for k in (1, 2, 5, 10):
            result = simulate_slot_contention(1_000_000, k, link, seed=0)
            expected = slot_transfer_time(1_000_000, k, link.nominal_bps)
            assert result.slot_receive_time == pytest.approx(expected, rel=1e-9)

    def test_handshake_added(self):
        link = quiet_link(handshake=1.5)
        result = simulate_slot_contention(1_000_000, 2, link, seed=0)
        assert result.slot_receive_time == pytest.approx(1.5 + 2 * 0.8, rel=1e-9)

    def test_slow_client_does_not_slow_others(self):
        """A client capped by its own radio frees channel for the rest."""
        link = LinkModel(nominal_bps=10e6, cv=1.0, handshake_s=0.0)
        result = simulate_slot_contention(1_000_000, 6, link, seed=3)
        # Completion times are not all equal under heterogeneous rates.
        assert result.completion_times.std() > 0

    def test_receive_time_monotone_in_occupancy(self):
        link = quiet_link(cv=0.2)
        times = [
            np.mean([
                simulate_slot_contention(500_000, k, link, seed=s).slot_receive_time
                for s in range(10)
            ])
            for k in (1, 3, 6, 10)
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_zero_payload(self):
        link = quiet_link(handshake=0.7)
        result = simulate_slot_contention(0, 3, link, seed=0)
        assert result.slot_receive_time == pytest.approx(0.7)


class TestOverrunProbability:
    def test_deterministic_link_step_function(self):
        from repro.network.contention import overrun_probability

        link = quiet_link(bps=10e6, handshake=0.0)  # 0.8 s for 1 MB
        assert overrun_probability(1_000_000, link, window_s=1.0, n_trials=100) == 0.0
        assert overrun_probability(1_000_000, link, window_s=0.5, n_trials=100) == 1.0

    def test_wider_window_lowers_overrun(self):
        from repro.network.contention import overrun_probability
        from repro.network.wifi import WIFI_80211N_2G4

        payload = 2_000_000
        tight = overrun_probability(payload, WIFI_80211N_2G4, window_s=15.0, seed=1)
        wide = overrun_probability(payload, WIFI_80211N_2G4, window_s=20.0, seed=1)
        assert wide < tight

    def test_guard_time_covers_most_of_the_tail(self):
        """The 1.5 s guard cuts the overrun rate for the paper's audio
        upload, but a long-tailed link still overruns sometimes — the
        residual the paper's synchronized-slot design tolerates."""
        from repro.network.contention import overrun_probability
        from repro.network.wifi import PAPER_CYCLE_PAYLOAD_BYTES, WIFI_80211N_2G4

        no_guard = overrun_probability(PAPER_CYCLE_PAYLOAD_BYTES, WIFI_80211N_2G4, 15.1, seed=2)
        with_guard = overrun_probability(PAPER_CYCLE_PAYLOAD_BYTES, WIFI_80211N_2G4, 16.6, seed=2)
        assert with_guard < no_guard
        assert 0.0 < with_guard < 0.5

    def test_validation(self):
        from repro.network.contention import overrun_probability

        with pytest.raises(ValueError):
            overrun_probability(100, quiet_link(), window_s=0.0)
        with pytest.raises(ValueError):
            overrun_probability(100, quiet_link(), window_s=1.0, n_trials=0)


class TestLossBDerivation:
    def test_paper_parameter_magnitude(self):
        """The paper's 1.5 s/client loss-B slope emerges from its own
        payload (~2 MB) on the deployed link (~1.25 Mbit/s shared)."""
        from repro.network.wifi import PAPER_CYCLE_PAYLOAD_BYTES, WIFI_80211N_2G4

        # The per-cycle *audio* payload is what the edge+cloud scenario
        # uploads in its 15 s window; sharing that upload among slot-mates
        # stretches it by roughly payload*8/C per client.
        audio_payload = 3 * 441_000 // 3  # one 10-s clip per hive
        slope = fitted_loss_b_seconds_per_client(
            audio_payload, WIFI_80211N_2G4, max_clients=8, n_trials=10, seed=0
        )
        # payload*8/C = 441000*8/1.25e6 ≈ 2.8 s; the paper's 1.5 s/client sits
        # in the same regime (their channel is shared less than fully fairly).
        assert 1.0 < slope < 5.0

    def test_slope_scales_with_payload(self):
        link = quiet_link(cv=0.1)
        small = fitted_loss_b_seconds_per_client(100_000, link, max_clients=6, n_trials=5, seed=1)
        large = fitted_loss_b_seconds_per_client(400_000, link, max_clients=6, n_trials=5, seed=1)
        assert large == pytest.approx(4 * small, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            fitted_loss_b_seconds_per_client(100, quiet_link(), max_clients=1)
