"""Units for the store-and-forward edge buffer (`repro.network.buffer`)."""

from __future__ import annotations

import pytest

from repro.network.buffer import (
    BLOCK,
    BLOCKED,
    DROP_NEWEST,
    DROP_OLDEST,
    DROPPED,
    STORED,
    BufferReport,
    BufferSpec,
    EdgeBuffer,
)
from repro.network.link import LinkModel
from repro.network.wifi import PAPER_CYCLE_PAYLOAD_BYTES


def spec(capacity=3, policy=DROP_OLDEST, payload=100):
    return BufferSpec(
        capacity_bytes=capacity * payload, policy=policy, payload_bytes=payload
    )


class TestBufferSpec:
    def test_for_cycles_sizes_in_whole_payloads(self):
        s = BufferSpec.for_cycles(4)
        assert s.capacity_bytes == 4 * PAPER_CYCLE_PAYLOAD_BYTES
        assert s.capacity_payloads == 4

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            BufferSpec(policy="fifo")
        with pytest.raises(ValueError):
            BufferSpec(capacity_bytes=0)
        with pytest.raises(ValueError):
            BufferSpec(capacity_bytes=1.5)  # non-integer bytes
        with pytest.raises(ValueError):
            BufferSpec(drain_window_s=0.0)
        with pytest.raises(ValueError):
            BufferSpec.for_cycles(0)

    def test_drain_quota_shrinks_with_contention(self):
        link = LinkModel(nominal_bps=1e6, handshake_s=1.0)
        s = BufferSpec(
            capacity_bytes=10 * 12500, payload_bytes=12500, drain_window_s=10.0
        )
        solo = s.drain_quota(link, contenders=1)
        shared = s.drain_quota(link, contenders=4)
        assert solo > shared >= 0

    def test_drain_quota_for_known_airtime(self):
        s = BufferSpec(capacity_bytes=1000, payload_bytes=100, drain_window_s=60.0)
        assert s.drain_quota_for(10.0) == 6
        assert s.drain_quota_for(10.0, contenders=3) == 2
        assert s.drain_quota_for(100.0) == 0
        with pytest.raises(ValueError):
            s.drain_quota_for(0.0)
        with pytest.raises(ValueError):
            s.drain_quota_for(10.0, contenders=0)

    def test_describe(self):
        assert "drop-oldest" in spec().describe()


class TestEdgeBufferPolicies:
    def test_store_then_fifo_drain(self):
        buf = EdgeBuffer(spec(capacity=2))
        assert buf.offer(0.0) == STORED
        assert buf.offer(10.0) == STORED
        first = buf.take(25.0)
        assert first.enqueue_t == 0.0
        assert buf.delays_s == [25.0]
        assert buf.resident_payloads == 1

    def test_drop_oldest_evicts_head(self):
        buf = EdgeBuffer(spec(capacity=2, policy=DROP_OLDEST))
        buf.offer(0.0)
        buf.offer(1.0)
        assert buf.offer(2.0) == STORED
        assert buf.dropped_payloads == 1
        # The oldest payload (t=0) was evicted; t=1 is now the head.
        assert buf.take(3.0).enqueue_t == 1.0

    def test_drop_newest_refuses_incoming(self):
        buf = EdgeBuffer(spec(capacity=2, policy=DROP_NEWEST))
        buf.offer(0.0)
        buf.offer(1.0)
        assert buf.offer(2.0) == DROPPED
        assert buf.take(3.0).enqueue_t == 0.0

    def test_block_refuses_and_counts(self):
        buf = EdgeBuffer(spec(capacity=1, policy=BLOCK))
        buf.offer(0.0)
        assert buf.offer(1.0) == BLOCKED
        assert buf.blocked_payloads == 1
        assert buf.dropped_payloads == 1  # blocked bytes count as dropped
        assert buf.conserves

    def test_oversized_payload_always_drops(self):
        buf = EdgeBuffer(spec(capacity=2, payload=100))
        assert buf.offer(0.0, nbytes=500) == DROPPED
        assert buf.conserves

    def test_take_on_empty_returns_none(self):
        assert EdgeBuffer(spec()).take(0.0) is None

    def test_drain_respects_quota(self):
        buf = EdgeBuffer(spec(capacity=3))
        for t in (0.0, 1.0, 2.0):
            buf.offer(t)
        out = buf.drain(10.0, 2)
        assert [p.enqueue_t for p in out] == [0.0, 1.0]
        assert buf.resident_payloads == 1
        assert buf.drain(11.0, 0) == []

    def test_conservation_through_mixed_traffic(self):
        buf = EdgeBuffer(spec(capacity=2))
        for t in range(5):
            buf.offer(float(t))
            assert buf.conserves
        buf.drain(10.0, 10)
        assert buf.conserves
        assert buf.offered_payloads == 5
        assert buf.delivered_payloads == 2
        assert buf.dropped_payloads == 3
        assert buf.resident_payloads == 0

    def test_rejects_bad_offers(self):
        buf = EdgeBuffer(spec())
        with pytest.raises(ValueError):
            buf.offer(-1.0)
        with pytest.raises(ValueError):
            buf.offer(0.0, nbytes=0)


class TestBufferReport:
    def test_aggregates_across_buffers(self):
        a, b = EdgeBuffer(spec(capacity=1)), EdgeBuffer(spec(capacity=2))
        a.offer(0.0)
        b.offer(0.0)
        b.offer(5.0)
        b.take(15.0)
        report = BufferReport.from_buffers([a, b])
        assert report.offered_payloads == 3
        assert report.delivered_payloads == 1
        assert report.resident_payloads == 2
        assert report.conserves
        assert report.delays_s == (15.0,)

    def test_delivered_fraction_empty_is_one(self):
        assert BufferReport().delivered_fraction == 1.0
        assert BufferReport().delay_quantile(0.95) == 0.0

    def test_delay_quantile(self):
        buf = EdgeBuffer(spec(capacity=3))
        for t in (0.0, 0.0, 0.0):
            buf.offer(t)
        for t in (10.0, 20.0, 30.0):
            buf.take(t)
        assert buf.report().delay_quantile(0.5) == 20.0

    def test_describe_mentions_percent(self):
        buf = EdgeBuffer(spec())
        buf.offer(0.0)
        buf.take(1.0)
        assert "100.0%" in buf.report().describe()
