"""Property tests for the intermittent-connectivity subsystem.

* outage renewal schedules tile the horizon exactly and are seed-stable:
  a client's windows depend only on (seed, kind, client id), never on the
  fleet size it was compiled alongside — the invariant that makes chunked
  parallel sweeps bit-identical to serial ones;
* the edge buffer conserves bytes exactly under arbitrary offer/drain
  interleavings for every overflow policy;
* :func:`overrun_probability` is monotone non-decreasing in the number of
  clients sharing the channel (fixed seed: the same throughput draws are
  split ``1/k`` ways).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import compile_schedule
from repro.network.buffer import (
    BLOCKED,
    BUFFER_POLICIES,
    BufferSpec,
    EdgeBuffer,
)
from repro.network.contention import overrun_probability
from repro.network.link import LinkModel
from repro.network.outage import LINK_OUTAGE, IntervalDist, OutagePattern
from repro.util.rng import make_rng

interval_dists = st.one_of(
    st.floats(min_value=10.0, max_value=7200.0).map(IntervalDist.fixed),
    st.floats(min_value=10.0, max_value=7200.0).map(IntervalDist.exponential),
    st.tuples(
        st.floats(min_value=10.0, max_value=3600.0),
        st.floats(min_value=0.0, max_value=3600.0),
    ).map(lambda ab: IntervalDist.uniform(ab[0], ab[0] + ab[1])),
    st.tuples(
        st.floats(min_value=10.0, max_value=3600.0),
        st.floats(min_value=0.0, max_value=2.0),
    ).map(lambda mc: IntervalDist.lognormal(mc[0], cv=mc[1])),
)

patterns = st.builds(
    OutagePattern, up=interval_dists, down=interval_dists, start_up=st.booleans()
)


@settings(max_examples=60, deadline=None)
@given(pattern=patterns, seed=st.integers(0, 2**31), horizon=st.floats(100.0, 1e6))
def test_segments_tile_horizon_exactly(pattern, seed, horizon):
    segments = pattern.compile_segments(horizon, make_rng(seed))
    assert segments[0][1] == 0.0
    assert segments[-1][2] == horizon
    state = "up" if pattern.start_up else "down"
    for kind, t0, t1 in segments:
        assert kind == state
        assert t1 > t0 or t1 == horizon  # only the final tile may clamp to zero width
        state = "down" if state == "up" else "up"
    for (_, _, prev_end), (_, start, _) in zip(segments, segments[1:]):
        assert start == prev_end


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    small=st.integers(1, 8),
    extra=st.integers(1, 40),
)
def test_windows_are_fleet_size_independent(seed, small, extra):
    """Client c's windows must be identical whether it was compiled in a
    fleet of `small` or `small + extra` clients (per-target seed streams)."""
    pattern = OutagePattern.duty_cycle(3600.0, 1200.0)
    a = compile_schedule([pattern], 86400.0, n_clients=small, seed=seed)
    b = compile_schedule([pattern], 86400.0, n_clients=small + extra, seed=seed)
    for cid in range(small):
        assert a.windows_for(LINK_OUTAGE, cid) == b.windows_for(LINK_OUTAGE, cid)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.integers(1, 400)),
        st.tuples(st.just("drain"), st.integers(0, 5)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(
    policy=st.sampled_from(BUFFER_POLICIES),
    capacity=st.integers(1, 6),
    sequence=ops,
)
def test_buffer_conserves_under_any_interleaving(policy, capacity, sequence):
    buf = EdgeBuffer(
        BufferSpec(capacity_bytes=capacity * 100, policy=policy, payload_bytes=100)
    )
    t = 0.0
    blocked = 0
    for op, arg in sequence:
        t += 1.0
        if op == "offer":
            if buf.offer(t, nbytes=arg) == BLOCKED:
                blocked += 1
        else:
            buf.drain(t, arg)
        assert buf.conserves
        assert buf.resident_bytes <= buf.spec.capacity_bytes
    assert buf.offered_payloads == (
        buf.delivered_payloads + buf.dropped_payloads + buf.resident_payloads
    )
    assert buf.blocked_payloads == blocked
    assert buf.blocked_payloads <= buf.dropped_payloads
    assert len(buf.delays_s) == buf.delivered_payloads
    assert all(d >= 0.0 for d in buf.delays_s)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    window=st.floats(5.0, 30.0),
    counts=st.lists(st.integers(1, 12), min_size=2, max_size=5),
)
def test_overrun_probability_monotone_in_client_count(seed, window, counts):
    link = LinkModel(nominal_bps=1e6, cv=0.5, handshake_s=1.5)
    probs = [
        overrun_probability(
            1_000_000, link, window, n_trials=300, seed=seed, n_clients=k
        )
        for k in sorted(counts)
    ]
    assert all(b >= a for a, b in zip(probs, probs[1:]))
