"""Tests for the energy ledger, including additivity properties."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.account import EnergyAccount

charges = st.lists(
    st.tuples(
        st.sampled_from(["sleep", "collect", "transfer", "service"]),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    ),
    max_size=30,
)


class TestCharging:
    def test_total_accumulates(self):
        acc = EnergyAccount("edge")
        acc.charge("sleep", 111.6, 178.5)
        acc.charge("collect", 131.8, 64.0)
        assert acc.total == pytest.approx(243.4)
        assert acc.category_total("sleep") == 111.6
        assert acc.category_duration("collect") == 64.0

    def test_charge_power(self):
        acc = EnergyAccount()
        acc.charge_power("sleep", 0.625, 178.5)
        assert acc.total == pytest.approx(111.5625)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccount().charge("x", -1.0)

    def test_categories_sorted(self):
        acc = EnergyAccount()
        acc.charge("b", 1.0)
        acc.charge("a", 1.0)
        assert acc.categories == ["a", "b"]

    def test_entries_require_flag(self):
        acc = EnergyAccount()
        with pytest.raises(ValueError):
            _ = acc.entries

    def test_entries_recorded(self):
        acc = EnergyAccount(keep_entries=True)
        acc.charge("x", 1.0, 2.0, time=5.0)
        (e,) = acc.entries
        assert (e.category, e.energy, e.duration, e.time) == ("x", 1.0, 2.0, 5.0)

    @given(charges)
    def test_total_equals_sum_of_categories(self, items):
        acc = EnergyAccount()
        for cat, e in items:
            acc.charge(cat, e)
        assert acc.total == pytest.approx(sum(acc.breakdown().values()))


class TestMerge:
    @given(charges, charges)
    def test_merge_totals_add(self, a_items, b_items):
        a, b = EnergyAccount("a"), EnergyAccount("b")
        for cat, e in a_items:
            a.charge(cat, e)
        for cat, e in b_items:
            b.charge(cat, e)
        merged = a.merge(b)
        assert merged.total == pytest.approx(a.total + b.total)

    @given(charges, charges)
    def test_merge_commutes(self, a_items, b_items):
        a, b = EnergyAccount(), EnergyAccount()
        for cat, e in a_items:
            a.charge(cat, e)
        for cat, e in b_items:
            b.charge(cat, e)
        assert a.merge(b).breakdown() == pytest.approx(b.merge(a).breakdown())

    def test_merge_does_not_mutate(self):
        a, b = EnergyAccount(), EnergyAccount()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        a.merge(b)
        assert a.total == 1.0 and b.total == 2.0

    def test_sum_rollup(self):
        accounts = []
        for i in range(5):
            acc = EnergyAccount(f"client-{i}")
            acc.charge("cycle", 322.0)
            accounts.append(acc)
        fleet = EnergyAccount.sum(accounts)
        assert fleet.total == pytest.approx(5 * 322.0)
        assert fleet.owner == "fleet"
