"""Tests for the DC/DC converter model."""

import numpy as np
import pytest

from repro.energy.converter import DCDCConverter


class TestEfficiency:
    def test_rises_with_load(self):
        conv = DCDCConverter()
        loads = np.array([0.1, 1.0, 5.0, 15.0])
        eff = conv.efficiency(loads)
        assert np.all(np.diff(eff) > 0)

    def test_bounded_by_peak(self):
        conv = DCDCConverter(peak_efficiency=0.92)
        assert conv.efficiency(15.0) <= 0.92

    def test_light_load_near_floor(self):
        conv = DCDCConverter(peak_efficiency=0.92, light_load_efficiency=0.70)
        assert conv.efficiency(0.0) == pytest.approx(0.70)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DCDCConverter().efficiency(-1.0)


class TestConvert:
    def test_output_below_input(self):
        conv = DCDCConverter()
        assert conv.convert(10.0) < 10.0

    def test_clamped_at_rating(self):
        conv = DCDCConverter(max_output_watts=15.0)
        assert conv.convert(100.0) == pytest.approx(15.0)

    def test_zero_in_zero_out(self):
        assert DCDCConverter().convert(0.0) == 0.0

    def test_monotone(self):
        conv = DCDCConverter()
        p = np.linspace(0, 40, 50)
        out = conv.convert(p)
        assert np.all(np.diff(out) >= -1e-12)

    def test_array_and_scalar_agree(self):
        conv = DCDCConverter()
        assert conv.convert(np.array([7.0]))[0] == pytest.approx(conv.convert(7.0))
