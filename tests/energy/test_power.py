"""Tests for power states and task power models."""

import pytest

from repro.energy.power import PowerModel, PowerState, TaskPower


class TestPowerState:
    def test_energy(self):
        st = PowerState("sleep", 0.625)
        assert st.energy(178.5) == pytest.approx(111.5625)

    def test_negative_watts_rejected(self):
        with pytest.raises(ValueError):
            PowerState("x", -1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PowerState("x", 1.0).energy(-1.0)

    def test_frozen(self):
        st = PowerState("x", 1.0)
        with pytest.raises(Exception):
            st.watts = 2.0


class TestTaskPower:
    def test_energy_from_watts(self):
        t = TaskPower("collect", duration=64.0, watts=2.06)
        assert t.energy == pytest.approx(131.84)
        assert t.power == 2.06

    def test_power_from_measured_energy(self):
        # Table I queen-detection SVM row.
        t = TaskPower("svm", duration=46.1, measured_energy=98.9)
        assert t.power == pytest.approx(98.9 / 46.1)
        assert t.energy == 98.9

    def test_measured_energy_wins(self):
        t = TaskPower("x", duration=10.0, watts=1.0, measured_energy=5.0)
        assert t.energy == 5.0

    def test_requires_some_power_info(self):
        with pytest.raises(ValueError):
            TaskPower("x", duration=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            TaskPower("x", duration=0.0, watts=1.0)

    def test_scaled(self):
        t = TaskPower("x", duration=10.0, measured_energy=20.0)
        s = t.scaled(duration_factor=2.0, energy_factor=1.5)
        assert s.duration == 20.0
        assert s.energy == 30.0
        assert s.name == "x"


class TestPowerModel:
    def make(self):
        return PowerModel("pi", [PowerState("sleep", 0.625), PowerState("active", 2.14)])

    def test_lookup(self):
        pm = self.make()
        assert pm.watts("sleep") == 0.625
        assert "active" in pm
        assert "boot" not in pm

    def test_unknown_state_names_known_ones(self):
        with pytest.raises(KeyError, match="sleep"):
            self.make()["nope"]

    def test_duplicate_state_rejected(self):
        with pytest.raises(ValueError):
            PowerModel("x", [PowerState("a", 1.0), PowerState("a", 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerModel("x", [])

    def test_weights_for_timeline_integration(self):
        assert self.make().weights() == {"sleep": 0.625, "active": 2.14}
