"""Tests for the battery state-of-charge model."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.battery import Battery


class TestCharge:
    def test_charge_stores_with_efficiency(self):
        b = Battery(capacity_joules=1000.0, soc=0.0, charge_efficiency=0.9,
                    cutoff_soc=0.0, recovery_soc=0.0)
        stored = b.charge(100.0)
        assert stored == pytest.approx(90.0)
        assert b.stored == pytest.approx(90.0)

    def test_overflow_discarded(self):
        b = Battery(capacity_joules=100.0, soc=0.95, charge_efficiency=1.0)
        accepted = b.charge(50.0)
        assert accepted == pytest.approx(5.0)
        assert b.soc == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Battery().charge(-1.0)


class TestDischarge:
    def test_delivers_with_efficiency(self):
        b = Battery(capacity_joules=1000.0, soc=1.0, discharge_efficiency=0.9,
                    cutoff_soc=0.0, recovery_soc=0.0)
        delivered = b.discharge(90.0)
        assert delivered == pytest.approx(90.0)
        assert b.stored == pytest.approx(1000.0 - 100.0)

    def test_cutoff_latches(self):
        b = Battery(capacity_joules=1000.0, soc=0.05, cutoff_soc=0.02, recovery_soc=0.10,
                    discharge_efficiency=1.0)
        # Drain below the cutoff: partial delivery, then zero.
        b.discharge(100.0)
        assert not b.can_supply
        assert b.discharge(1.0) == 0.0

    def test_recovery_hysteresis(self):
        b = Battery(capacity_joules=1000.0, soc=0.05, cutoff_soc=0.02, recovery_soc=0.10,
                    charge_efficiency=1.0, discharge_efficiency=1.0)
        b.discharge(100.0)  # trip cutoff
        b.charge(30.0)  # soc ~0.05 < recovery: still latched
        assert not b.can_supply
        b.charge(100.0)  # above recovery
        assert b.can_supply

    def test_never_delivers_below_cutoff_floor(self):
        b = Battery(capacity_joules=1000.0, soc=0.5, cutoff_soc=0.1, recovery_soc=0.2,
                    discharge_efficiency=1.0)
        b.discharge(10_000.0)
        assert b.soc >= 0.1 - 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.lists(st.floats(min_value=0, max_value=500, allow_nan=False), max_size=20),
    )
    def test_soc_always_in_bounds(self, soc0, loads):
        b = Battery(capacity_joules=1000.0, soc=soc0)
        for load in loads:
            b.discharge(load)
            b.charge(load / 2)
            assert 0.0 <= b.soc <= 1.0 + 1e-12

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_delivered_never_exceeds_request(self, request):
        b = Battery(capacity_joules=1000.0, soc=0.5)
        assert b.discharge(request) <= request + 1e-9


class TestValidation:
    def test_recovery_below_cutoff_rejected(self):
        with pytest.raises(ValueError):
            Battery(cutoff_soc=0.1, recovery_soc=0.05)

    def test_default_capacity_is_paper_bank(self):
        # 20 000 mAh at 3.7 V ≈ 266.4 kJ.
        assert Battery.DEFAULT_CAPACITY == pytest.approx(266_400.0)
