"""Tests for the combined energy-node harvest simulation."""

import numpy as np
import pytest

from repro.energy.battery import Battery
from repro.energy.converter import DCDCConverter
from repro.energy.harvest import EnergyNode, HarvestSimulation
from repro.energy.solar import SolarPanel, clear_sky_irradiance
from repro.util.units import DAY, HOUR


def small_node(soc=0.5, capacity=5000.0):
    return EnergyNode(
        panel=SolarPanel(),
        converter=DCDCConverter(),
        battery=Battery(capacity_joules=capacity, soc=soc),
    )


class TestHarvestSimulation:
    def test_constant_daylight_keeps_load_up(self):
        sim = HarvestSimulation(
            small_node(soc=0.5),
            irradiance_fn=lambda t: 800.0,
            load_fn=lambda t, available: 1.0,
            step=60.0,
        )
        result = sim.run(6 * HOUR)
        assert result.uptime_fraction == 1.0
        assert result.outages() == []

    def test_night_drains_small_battery_to_outage(self):
        sim = HarvestSimulation(
            small_node(soc=0.3, capacity=3000.0),
            irradiance_fn=lambda t: 0.0,
            load_fn=lambda t, available: 1.5,
            step=60.0,
        )
        result = sim.run(6 * HOUR)
        assert result.uptime_fraction < 1.0
        assert len(result.outages()) >= 1

    def test_day_night_cycle_produces_night_outages(self):
        # The Figure 2a pattern: dark periods align with night.
        sim = HarvestSimulation(
            small_node(soc=0.4, capacity=20_000.0),
            irradiance_fn=clear_sky_irradiance,
            load_fn=lambda t, available: 1.6,
            step=300.0,
        )
        result = sim.run(3 * DAY)
        outages = result.outages()
        assert outages, "expected at least one night outage"
        for start, end in outages:
            mid = ((start + end) / 2) % DAY
            assert mid < 9 * HOUR or mid > 18 * HOUR, f"outage centred at {mid/3600:.1f} h"

    def test_soc_rises_during_day_with_no_load(self):
        sim = HarvestSimulation(
            small_node(soc=0.2, capacity=50_000.0),
            irradiance_fn=lambda t: 700.0,
            load_fn=lambda t, available: 0.0,
            step=60.0,
        )
        result = sim.run(2 * HOUR)
        assert result.soc[-1] > result.soc[0]

    def test_energy_conservation_no_harvest(self):
        # With zero harvest and perfect efficiencies, delivered energy equals
        # the battery's usable stored-energy drop.
        node = EnergyNode(
            panel=SolarPanel(),
            converter=DCDCConverter(),
            battery=Battery(capacity_joules=10_000.0, soc=1.0,
                            charge_efficiency=1.0, discharge_efficiency=1.0,
                            cutoff_soc=0.0, recovery_soc=0.0),
        )
        sim = HarvestSimulation(node, irradiance_fn=lambda t: 0.0,
                                load_fn=lambda t, available: 2.0, step=60.0)
        before = node.battery.stored
        result = sim.run(HOUR)
        delivered = float(np.sum(result.supplied_watts) * sim.step)
        assert delivered == pytest.approx(before - node.battery.stored, rel=1e-9)

    def test_load_fn_sees_availability(self):
        calls = []

        def load(t, available):
            calls.append(available)
            return 1.0

        sim = HarvestSimulation(small_node(), irradiance_fn=lambda t: 500.0, load_fn=load, step=60.0)
        sim.run(10 * 60.0)
        assert all(isinstance(a, (bool, np.bool_)) for a in calls)

    def test_result_arrays_aligned(self):
        sim = HarvestSimulation(small_node(), step=60.0)
        result = sim.run(HOUR)
        n = len(result.times)
        for arr in (result.irradiance, result.harvest_watts, result.load_watts,
                    result.supplied_watts, result.soc, result.available):
            assert len(arr) == n
