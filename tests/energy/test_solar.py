"""Tests for irradiance and panel models."""

import numpy as np
import pytest

from repro.energy.solar import SolarPanel, clear_sky_irradiance
from repro.util.units import DAY, HOUR


class TestClearSky:
    def test_zero_at_night(self):
        assert clear_sky_irradiance(0.0) == 0.0
        assert clear_sky_irradiance(23 * HOUR) == 0.0

    def test_peak_at_solar_noon(self):
        noon = 13 * HOUR  # midpoint of 6h-20h window
        irr = clear_sky_irradiance(noon)
        assert irr == pytest.approx(900.0, rel=1e-6)

    def test_sunrise_sunset_boundaries(self):
        assert clear_sky_irradiance(6 * HOUR) == pytest.approx(0.0, abs=1e-9)
        assert clear_sky_irradiance(20 * HOUR) == pytest.approx(0.0, abs=1e-6)

    def test_wraps_around_days(self):
        assert clear_sky_irradiance(13 * HOUR) == clear_sky_irradiance(13 * HOUR + 2 * DAY)

    def test_array_input(self):
        t = np.array([0.0, 13 * HOUR])
        irr = clear_sky_irradiance(t)
        assert irr.shape == (2,)
        assert irr[0] == 0.0 and irr[1] > 0

    def test_symmetry(self):
        # Equal distance from solar noon -> equal irradiance.
        a = clear_sky_irradiance(10 * HOUR)
        b = clear_sky_irradiance(16 * HOUR)
        assert a == pytest.approx(b)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            clear_sky_irradiance(0.0, sunrise_s=10.0, sunset_s=5.0)


class TestSolarPanel:
    def test_rated_output_at_stc(self):
        panel = SolarPanel(rated_watts=30.0, derating=1.0)
        assert panel.output_watts(1000.0) == pytest.approx(30.0)

    def test_linear_in_irradiance(self):
        panel = SolarPanel(rated_watts=30.0, derating=1.0, low_light_knee=0.0)
        assert panel.output_watts(500.0) == pytest.approx(15.0)

    def test_low_light_cutoff(self):
        # "Low luminosity takes the panel's output voltage to uncontrolled
        # values": below the knee the panel contributes nothing usable.
        panel = SolarPanel(low_light_knee=60.0)
        assert panel.output_watts(59.0) == 0.0
        assert panel.output_watts(61.0) > 0.0

    def test_derating(self):
        full = SolarPanel(derating=1.0).output_watts(1000.0)
        derated = SolarPanel(derating=0.85).output_watts(1000.0)
        assert derated == pytest.approx(0.85 * full)

    def test_array_output(self):
        panel = SolarPanel()
        out = panel.output_watts(np.array([0.0, 500.0, 1000.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) >= 0)

    def test_negative_irradiance_rejected(self):
        with pytest.raises(ValueError):
            SolarPanel().output_watts(-1.0)

    def test_energy_integration(self):
        panel = SolarPanel(rated_watts=30.0, derating=1.0, low_light_knee=0.0)
        times = np.array([0.0, 3600.0])
        irr = np.array([1000.0, 1000.0])
        assert panel.energy(times, irr) == pytest.approx(30.0 * 3600.0)

    def test_energy_requires_increasing_times(self):
        panel = SolarPanel()
        with pytest.raises(ValueError):
            panel.energy(np.array([1.0, 1.0]), np.array([0.0, 0.0]))

    def test_daily_energy_plausible(self):
        # A 30 W panel on a clear day should harvest a few hundred Wh > the
        # ~2 Wh/day systems in the related work.
        panel = SolarPanel()
        times = np.arange(0, DAY, 60.0)
        irr = clear_sky_irradiance(times)
        wh = panel.energy(times, irr) / 3600.0
        assert 100.0 < wh < 300.0
