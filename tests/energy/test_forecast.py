"""Tests for the solar-harvest forecasters."""

import numpy as np
import pytest

from repro.energy.forecast import DiurnalProfileForecaster, PersistenceForecaster
from repro.energy.solar import clear_sky_irradiance
from repro.util.units import DAY, HOUR


def feed_days(forecaster, n_days=3, step=600.0, scale=0.03):
    """Feed a clear-sky power pattern (scaled irradiance) for n_days."""
    times = np.arange(0, n_days * DAY, step)
    for t in times:
        forecaster.observe(float(t), scale * clear_sky_irradiance(float(t)))
    return times


class TestDiurnalProfile:
    def test_untrained_predicts_zero(self):
        f = DiurnalProfileForecaster()
        assert not f.trained
        assert f.predict_energy(0.0, DAY) == 0.0

    def test_learns_diurnal_shape(self):
        f = DiurnalProfileForecaster()
        feed_days(f, n_days=3)
        assert f.trained
        assert f.predict_power(13 * HOUR) > 10.0  # midday
        assert f.predict_power(2 * HOUR) == pytest.approx(0.0, abs=1e-9)  # night

    def test_predicted_energy_matches_observed_day(self):
        f = DiurnalProfileForecaster()
        feed_days(f, n_days=4, step=600.0, scale=0.03)
        predicted = f.predict_energy(4 * DAY, 5 * DAY)
        # Ground truth for one clear day.
        times = np.arange(0, DAY, 60.0)
        actual = float(np.trapezoid(0.03 * clear_sky_irradiance(times), times))
        assert predicted == pytest.approx(actual, rel=0.1)

    def test_window_integration_additive(self):
        f = DiurnalProfileForecaster()
        feed_days(f, n_days=2)
        whole = f.predict_energy(2 * DAY, 3 * DAY)
        halves = f.predict_energy(2 * DAY, 2.5 * DAY) + f.predict_energy(2.5 * DAY, 3 * DAY)
        assert whole == pytest.approx(halves, rel=1e-9)

    def test_ewma_adapts_to_regime_change(self):
        f = DiurnalProfileForecaster(alpha=0.5)
        feed_days(f, n_days=3, scale=0.03)
        sunny = f.predict_power(13 * HOUR)
        # Three dark days halve (and halve again) the profile.
        for t in np.arange(3 * DAY, 6 * DAY, 600.0):
            f.observe(float(t), 0.0)
        f.observe(6 * DAY + 1.0, 0.0)  # fold the last day
        assert f.predict_power(13 * HOUR) < 0.2 * sunny

    def test_time_must_not_go_backwards(self):
        f = DiurnalProfileForecaster()
        f.observe(100.0, 1.0)
        with pytest.raises(ValueError):
            f.observe(50.0, 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfileForecaster().observe(0.0, -1.0)

    def test_invalid_window(self):
        f = DiurnalProfileForecaster()
        with pytest.raises(ValueError):
            f.predict_energy(10.0, 5.0)


class TestPersistence:
    def test_mean_of_window(self):
        f = PersistenceForecaster(window=100.0)
        f.observe(0.0, 2.0)
        f.observe(50.0, 4.0)
        assert f.predict_energy(50.0, 60.0) == pytest.approx(3.0 * 10.0)

    def test_old_samples_trimmed(self):
        f = PersistenceForecaster(window=10.0)
        f.observe(0.0, 100.0)
        f.observe(20.0, 2.0)
        assert f.predict_energy(20.0, 21.0) == pytest.approx(2.0)

    def test_empty_predicts_zero(self):
        assert PersistenceForecaster().predict_energy(0.0, 10.0) == 0.0
