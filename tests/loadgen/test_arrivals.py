"""Property tests for the seeded arrival processes (satellite 4).

Pins the three contracts the module docstring advertises: rate
stationarity, chunking/fleet-size independence, and replay identity.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen.arrivals import (
    Arrival,
    LoadSpec,
    arrival_to_request,
    hive_stream,
    merged_stream,
)

BASE = LoadSpec(n_hives=8, rate_hz=0.05, horizon_s=2000.0, seed=42)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("n_hives", -1, "n_hives"),
            ("rate_hz", 0.0, "rate_hz"),
            ("horizon_s", -0.5, "horizon_s"),
            ("telemetry_fraction", 1.5, "telemetry_fraction"),
            ("mode", "burst", "mode"),
        ],
    )
    def test_bad_values_rejected(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            dataclasses.replace(BASE, **{field: value})

    def test_describe_round_trips_through_replace(self):
        spec = LoadSpec(**BASE.describe())
        assert spec == BASE


class TestStreamShape:
    def test_opens_with_admit_inside_window(self):
        for hive in range(BASE.n_hives):
            stream = hive_stream(BASE, hive)
            first = stream[0]
            assert first.op == "admit" and first.seq == 0
            assert 0.0 <= first.t <= BASE.admit_window_s

    def test_strictly_increasing_times_and_seqs(self):
        stream = hive_stream(BASE, 3)
        for a, b in zip(stream, stream[1:]):
            assert b.t > a.t and b.seq == a.seq + 1
            assert b.t <= BASE.horizon_s

    def test_merged_stream_globally_sorted(self):
        arrivals = list(merged_stream(BASE))
        keys = [a.sort_key for a in arrivals]
        assert keys == sorted(keys)
        assert sum(1 for a in arrivals if a.op == "admit") == BASE.n_hives

    def test_telemetry_fraction_extremes(self):
        all_tel = dataclasses.replace(BASE, telemetry_fraction=1.0)
        assert all(a.op == "telemetry" for a in hive_stream(all_tel, 0)[1:])
        no_tel = dataclasses.replace(BASE, telemetry_fraction=0.0)
        assert all(a.op == "inference" for a in hive_stream(no_tel, 0)[1:])

    def test_request_dict_carries_payload_only_for_telemetry(self):
        req = arrival_to_request(Arrival(1.0, 2, 3, "telemetry", 512))
        assert req == {"op": "telemetry", "hive": 2, "t": 1.0, "bytes": 512}
        req = arrival_to_request(Arrival(1.0, 2, 3, "inference"))
        assert "bytes" not in req


class TestRateStationarity:
    @settings(max_examples=15, deadline=None)
    @given(
        rate=st.sampled_from([0.01, 0.05, 0.2]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_mean_gap_converges_to_inverse_rate(self, rate, seed):
        # One long stream: horizon sized for ~2000 arrivals.
        spec = LoadSpec(
            n_hives=1, rate_hz=rate, horizon_s=2000.0 / rate, seed=seed
        )
        times = [a.t for a in hive_stream(spec, 0)][1:]  # drop the admit
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(gaps) > 1000
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1.0 / rate, rel=0.15)

    def test_first_and_second_half_rates_agree(self):
        spec = LoadSpec(n_hives=1, rate_hz=0.1, horizon_s=40_000.0, seed=7)
        times = [a.t for a in hive_stream(spec, 0)][1:]
        half = spec.horizon_s / 2
        first = sum(1 for t in times if t <= half)
        second = len(times) - first
        assert first == pytest.approx(second, rel=0.1)


class TestIndependence:
    @settings(max_examples=20, deadline=None)
    @given(
        n_small=st.integers(min_value=1, max_value=6),
        n_big=st.integers(min_value=7, max_value=24),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fleet_growth_never_perturbs_existing_hives(self, n_small, n_big, seed):
        small = dataclasses.replace(BASE, n_hives=n_small, seed=seed)
        big = dataclasses.replace(BASE, n_hives=n_big, seed=seed)
        for hive in range(n_small):
            assert hive_stream(small, hive) == hive_stream(big, hive)

    def test_merged_equals_concat_of_per_hive_streams(self):
        # Chunking independence: generating hive-by-hive then sorting is the
        # merged stream — no cross-hive RNG coupling.
        per_hive = [a for h in range(BASE.n_hives) for a in hive_stream(BASE, h)]
        per_hive.sort(key=lambda a: a.sort_key)
        assert per_hive == list(merged_stream(BASE))

    def test_distinct_hives_get_distinct_streams(self):
        assert hive_stream(BASE, 0) != hive_stream(BASE, 1)

    def test_distinct_seeds_get_distinct_streams(self):
        other = dataclasses.replace(BASE, seed=BASE.seed + 1)
        assert hive_stream(BASE, 0) != hive_stream(other, 0)


class TestReplayIdentity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_same_spec_same_stream(self, seed):
        spec = dataclasses.replace(BASE, seed=seed)
        assert list(merged_stream(spec)) == list(merged_stream(spec))

    def test_zero_hives_and_zero_horizon(self):
        assert list(merged_stream(dataclasses.replace(BASE, n_hives=0))) == []
        flat = dataclasses.replace(BASE, horizon_s=0.0)
        for hive in range(flat.n_hives):
            stream = hive_stream(flat, hive)
            assert [a.op for a in stream] in ([], ["admit"])
