"""Tests for the replay driver: open/closed loop, report, determinism."""

import dataclasses
import json

import pytest

from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import (
    InProcessTransport,
    ReplayReport,
    iter_requests,
    replay_in_process,
)
from repro.serve.engine import OrchestrationEngine, ServeConfig

SPEC = LoadSpec(n_hives=6, rate_hz=0.02, horizon_s=1200.0, seed=11)


class TestOpenLoop:
    def test_report_accounts_for_every_arrival(self):
        engine, report = replay_in_process(SPEC)
        assert report.n_errors == 0
        assert report.n_requests == sum(report.by_op.values())
        assert report.by_op["admit"] == SPEC.n_hives
        assert report.n_requests == len(list(iter_requests(SPEC)))
        assert engine.n_requests == report.n_requests

    def test_replay_is_deterministic(self):
        _, r1 = replay_in_process(SPEC)
        _, r2 = replay_in_process(SPEC)
        assert r1 == r2
        assert r1.response_sha256 == r2.response_sha256

    def test_different_seed_different_fingerprint(self):
        _, r1 = replay_in_process(SPEC)
        _, r2 = replay_in_process(dataclasses.replace(SPEC, seed=SPEC.seed + 1))
        assert r1.response_sha256 != r2.response_sha256

    def test_all_admitted_inferences_go_cloud(self):
        spec = dataclasses.replace(SPEC, telemetry_fraction=0.0)
        _, report = replay_in_process(spec)
        inferences = report.by_op.get("inference", 0)
        assert inferences > 0
        assert report.placements.get("cloud", 0) == inferences

    def test_engine_errors_counted_not_raised(self):
        # A zero-budget engine rejects admits politely; inference before
        # admission falls back to edge.  Neither is a client-side error.
        engine = OrchestrationEngine(ServeConfig(max_servers=0))
        _, report = replay_in_process(SPEC, engine)
        assert report.n_errors == 0
        assert report.placements.get("edge", 0) > 0
        assert "cloud" not in report.placements

    def test_report_to_dict_is_stable(self):
        _, report = replay_in_process(SPEC)
        d = report.to_dict()
        assert set(d) == {
            "n_requests", "n_errors", "by_op", "by_class", "placements",
            "last_t", "response_sha256",
        }
        assert d["last_t"] <= SPEC.horizon_s


class TestClosedLoop:
    CLOSED = dataclasses.replace(
        SPEC, mode="closed", telemetry_fraction=0.0, rate_hz=1.0 / 200.0
    )

    def test_closed_loop_is_deterministic(self):
        _, r1 = replay_in_process(self.CLOSED)
        _, r2 = replay_in_process(self.CLOSED)
        assert r1 == r2

    def test_gating_never_breaks_monotonic_clock(self):
        engine, report = replay_in_process(self.CLOSED)
        assert report.n_errors == 0  # any non-monotonic t would error

    def test_closed_loop_issues_no_faster_than_completions(self):
        # Closed loop defers arrivals past each hive's done_t, so the
        # offered load can never outrun the service: at most one request
        # per hive per cycle reaches the engine's cloud path.
        engine, report = replay_in_process(self.CLOSED)
        cycles = self.CLOSED.horizon_s / engine.config.period
        per_hive_cap = cycles + 2  # admit + in-flight tail
        inferences = report.by_op.get("inference", 0)
        assert inferences <= self.CLOSED.n_hives * per_hive_cap

    def test_closed_loop_bounds_queueing_under_saturation(self):
        # Closed loop defers (never drops): both modes issue the same
        # arrivals, but open loop fires them at schedule and queues up,
        # while closed loop waits for done_t so at most one request per
        # hive is ever in flight.  Same counts, very different latency.
        hot = dataclasses.replace(self.CLOSED, rate_hz=0.05)
        open_spec = dataclasses.replace(hot, mode="open")
        closed_engine, closed = replay_in_process(hot)
        open_engine, opened = replay_in_process(open_spec)
        assert closed.by_op == opened.by_op
        assert closed.response_sha256 != opened.response_sha256
        closed_p99 = closed_engine.latency_report()["inference"]["p99_s"]
        open_p99 = open_engine.latency_report()["inference"]["p99_s"]
        assert closed_p99 <= 2 * closed_engine.config.period
        assert open_p99 > closed_p99

    def test_last_t_reports_the_pushed_back_issue_time(self):
        # Regression: _fold used to record the *scheduled* arrival.t, so a
        # gated closed loop under-reported the horizon (and overstated rps).
        # Saturate hard enough that deferral pushes the final issue time
        # past every scheduled arrival, then cross-check against the
        # engine's own clock — the engine saw issue times, nothing else.
        from repro.loadgen.arrivals import merged_stream

        hot = dataclasses.replace(self.CLOSED, rate_hz=0.05)
        engine, report = replay_in_process(hot)
        last_scheduled = max(a.t for a in merged_stream(hot))
        assert report.last_t > last_scheduled
        assert report.last_t == engine._last_t


class TestTransports:
    def test_in_process_transport_passes_copies(self):
        engine = OrchestrationEngine()
        transport = InProcessTransport(engine)
        request = {"op": "admit", "hive": 0, "t": 0.0}
        response = transport.send(request)
        assert response["ok"]
        assert request == {"op": "admit", "hive": 0, "t": 0.0}  # not mutated

    def test_replay_accepts_prebuilt_engine(self):
        engine = OrchestrationEngine(ServeConfig(policy="balanced"))
        same, report = replay_in_process(SPEC, engine)
        assert same is engine
        assert engine.steady_state_matches_batch()

    def test_empty_spec_yields_empty_report(self):
        _, report = replay_in_process(dataclasses.replace(SPEC, n_hives=0))
        assert report == ReplayReport(
            response_sha256=report.response_sha256
        )
        import hashlib

        assert report.response_sha256 == hashlib.sha256().hexdigest()


class TestErrorClasses:
    def test_classify_success_and_shed_and_engine(self):
        from repro.loadgen.replay import ENGINE_ERROR, SHED, classify_response

        assert classify_response({"ok": True, "op": "inference"}) is None
        assert classify_response({"ok": False, "shed": True}) == SHED
        assert classify_response({"ok": False, "error": "boom"}) == ENGINE_ERROR

    def test_classify_transport_tags_pass_through(self):
        from repro.loadgen.replay import CONNECTION_REFUSED, TIMEOUT, classify_response

        for cls in (CONNECTION_REFUSED, TIMEOUT):
            assert classify_response({"ok": False, "error_class": cls}) == cls

    def test_connection_refused_is_synthesized_not_raised(self):
        import socket

        from repro.loadgen.replay import CONNECTION_REFUSED, HttpTransport

        # grab a port that is certainly closed
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        transport = HttpTransport(
            f"http://127.0.0.1:{port}", max_attempts=2, backoff_s=0.01
        )
        response = transport.send({"op": "inference", "hive": 0, "t": 0.0})
        assert response["ok"] is False
        assert response["error_class"] == CONNECTION_REFUSED
        assert response["op"] == "inference"

    def test_timeout_is_synthesized_not_raised(self):
        import socket

        from repro.loadgen.replay import TIMEOUT, HttpTransport

        # a listener that accepts but never answers forces a read timeout
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            transport = HttpTransport(
                f"http://127.0.0.1:{port}", timeout_s=0.2, max_attempts=1
            )
            response = transport.send({"op": "telemetry", "hive": 0, "t": 0.0})
        assert response["ok"] is False
        assert response["error_class"] == TIMEOUT

    def test_transport_backoff_is_seeded(self):
        from repro.loadgen.replay import HttpTransport

        a = HttpTransport("http://x", seed=1)
        b = HttpTransport("http://x", seed=1)
        assert [a._rng.uniform(-1, 1) for _ in range(4)] == [
            b._rng.uniform(-1, 1) for _ in range(4)
        ]

    def test_report_buckets_and_unexpected_classes(self):
        report = ReplayReport(
            n_errors=3, by_class={"shed": 2, "timeout": 1}
        )
        assert report.unexpected_classes(("shed",)) == {"timeout": 1}
        assert report.unexpected_classes(("shed", "timeout")) == {}
        assert report.unexpected_classes() == {"shed": 2, "timeout": 1}

    def test_shed_responses_counted_in_by_class(self):
        from repro.serve.engine import ServeConfig

        engine = OrchestrationEngine(ServeConfig(queue_bound=1))
        hot = dataclasses.replace(SPEC, rate_hz=0.05, telemetry_fraction=0.0)
        _, report = replay_in_process(hot, engine)
        assert report.by_class.get("shed", 0) > 0
        assert report.n_errors == sum(report.by_class.values())
        assert report.unexpected_classes(("shed",)) == {}


class TestSkipReconnect:
    def test_skip_replays_only_the_tail(self):
        from repro.loadgen.replay import InProcessTransport, replay

        full = list(iter_requests(SPEC))
        skip = len(full) // 2
        engine = OrchestrationEngine()
        for request in full[:skip]:
            engine.handle(dict(request))
        tail = replay(SPEC, InProcessTransport(engine), skip=skip)
        assert tail.n_requests == len(full) - skip
        # the server-side totals cover the whole stream
        assert engine.n_requests == len(full)

    def test_skip_validation(self):
        from repro.loadgen.replay import InProcessTransport, replay

        transport = InProcessTransport(OrchestrationEngine())
        with pytest.raises(ValueError):
            replay(SPEC, transport, skip=-1)
        with pytest.raises(ValueError):
            replay(dataclasses.replace(SPEC, mode="closed"), transport, skip=1)

    def test_skip_everything_is_an_empty_report(self):
        from repro.loadgen.replay import InProcessTransport, replay

        n = len(list(iter_requests(SPEC)))
        report = replay(SPEC, InProcessTransport(OrchestrationEngine()), skip=n)
        assert report.n_requests == 0


class TestCliErrorHandling:
    def test_unknown_allow_errors_class_exits_2(self, capsys):
        from repro.loadgen.cli import main

        assert main(["--in-process", "--hives", "2", "--horizon", "300",
                     "--allow-errors", "bogus"]) == 2
        assert "unknown error classes" in capsys.readouterr().err

    def test_resume_from_target_requires_http(self, capsys):
        from repro.loadgen.cli import main

        assert main(["--in-process", "--resume-from-target"]) == 2
        assert "HTTP" in capsys.readouterr().err

    def test_clean_run_with_allow_errors_exits_0(self, capsys):
        from repro.loadgen.cli import main

        code = main(["--in-process", "--hives", "2", "--horizon", "300",
                     "--allow-errors", "shed", "--expect-zero-errors"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["report"]["n_errors"] == 0
        assert payload["skip"] == 0
