"""Cross-package integration tests: the full queen-detection pipeline."""

import numpy as np
import pytest

from repro.audio.dataset import DatasetSpec, QueenDataset
from repro.audio.synth import HiveSoundSynthesizer, narrowed
from repro.dsp.features import mel_statistics
from repro.dsp.image import spectrogram_to_image
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
from repro.ml.metrics import accuracy, precision_recall_f1
from repro.ml.scaler import StandardScaler
from repro.ml.split import train_test_split
from repro.ml.svm import SVC


@pytest.fixture(scope="module")
def corpus():
    ds = QueenDataset(DatasetSpec.small(n_samples=120, clip_duration=2.0, seed=7))
    mel = MelSpectrogram(SpectrogramConfig())
    return ds.features(mel.db)


class TestSvmPipeline:
    def test_audio_to_decision(self, corpus):
        """Synthetic audio → mel stats → SVM beats chance comfortably."""
        specs, y = corpus
        X = np.stack([mel_statistics(s) for s in specs])
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=1)
        sc = StandardScaler()
        clf = SVC(C=20.0, gamma="scale", seed=1).fit(sc.fit_transform(Xtr), ytr)
        preds = clf.predict(sc.transform(Xte))
        acc = accuracy(yte, preds)
        assert acc >= 0.8
        prf = precision_recall_f1(yte, preds, positive=1)
        assert prf["f1"] >= 0.75

    def test_image_features_at_high_resolution(self, corpus):
        specs, y = corpus
        X = np.stack([spectrogram_to_image(s, 100).ravel() for s in specs])
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=1)
        sc = StandardScaler()
        clf = SVC(C=20.0, gamma="scale", seed=1).fit(sc.fit_transform(Xtr), ytr)
        assert clf.score(sc.transform(Xte), yte) >= 0.85

    def test_identical_classes_drop_to_chance(self):
        """Sanity: with the class cue removed, the pipeline cannot beat
        chance — guards against label leakage anywhere in the stack."""
        synth = narrowed(HiveSoundSynthesizer(), 0.0)
        ds = QueenDataset(DatasetSpec.small(n_samples=80, clip_duration=1.0, seed=11), synth)
        mel = MelSpectrogram(SpectrogramConfig())
        specs, y = ds.features(mel.db)
        X = np.stack([mel_statistics(s) for s in specs])
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=2)
        sc = StandardScaler()
        clf = SVC(C=20.0, gamma="scale", seed=2).fit(sc.fit_transform(Xtr), ytr)
        assert clf.score(sc.transform(Xte), yte) <= 0.75


class TestCnnPipeline:
    def test_small_cnn_learns_queen_detection(self, corpus):
        from repro.ml.nn.resnet import small_cnn
        from repro.ml.nn.train import TrainConfig, Trainer

        specs, y = corpus
        X = np.stack([spectrogram_to_image(s, 32) for s in specs])[:, None, :, :]
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=3)
        trainer = Trainer(small_cnn(seed=3), TrainConfig(epochs=6, lr=0.01, batch_size=16, seed=3))
        trainer.fit(Xtr, ytr)
        assert trainer.evaluate(Xte, yte) >= 0.7
