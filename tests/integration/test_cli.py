"""Tests for the repro-exp CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_run_one(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Average consumed power" in out
        assert "paper vs measured" in out

    def test_run_multiple(self, capsys):
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert out.count("paper vs measured") == 2

    def test_unknown_id(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 2
        assert "repro-exp" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        assert main(["--json", "fig3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment_id"] == "fig3"
        assert payload[0]["comparisons"][0]["within_tolerance"] is True
        assert "average_power_w" in payload[0]["series"]

    def test_list_extensions(self, capsys):
        assert main(["--list", "--extensions"]) == 0
        out = capsys.readouterr().out
        assert "ext-training" in out and "fig3" in out

    def test_run_extension_by_id(self, capsys):
        assert main(["ext-training"]) == 0
        assert "Training-phase energy" in capsys.readouterr().out

    def test_json_no_series(self, capsys):
        import json

        assert main(["--json", "--no-series", "table1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "series" not in payload[0]


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.CYCLE_SECONDS == 300.0
        result = repro.simulate_fleet(100, repro.EDGE_CLOUD_SVM)
        assert result.total_energy_j > 0
        assert callable(repro.run_experiment)
