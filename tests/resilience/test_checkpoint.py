"""Checkpoint envelope, cadence policy and multi-stage store tests."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpointer,
    CheckpointPolicy,
    RunCheckpoint,
    load_checkpoint,
    run_key,
    write_checkpoint,
)
from repro.resilience.errors import (
    CheckpointCorrupt,
    CheckpointMismatch,
    CheckpointSchemaMismatch,
    InterruptedRun,
)


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        payload = {"stages": {"s": {"0": [1, 2]}}, "extra": {"rng": [3, 4]}}
        write_checkpoint(path, payload, kind="run", run_key="abc")
        assert load_checkpoint(path, kind="run", expect_run_key="abc") == payload

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent.json")

    @settings(max_examples=30, deadline=None)
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_any_truncation_is_payload_or_corrupt(self, frac, tmp_path_factory):
        """The crash-only contract: an arbitrary prefix of a checkpoint file
        either loads the complete payload (whitespace-only cuts) or raises
        CheckpointCorrupt — it never yields partial or wrong data."""
        tmp_path = tmp_path_factory.mktemp("trunc")
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"k": list(range(50))}, kind="run")
        data = path.read_bytes()
        cut = int(frac * len(data))
        cut_file = tmp_path / "cut.json"
        cut_file.write_bytes(data[:cut])
        try:
            loaded = load_checkpoint(cut_file)
        except CheckpointCorrupt:
            pass
        else:
            assert loaded == {"k": list(range(50))}
            assert cut >= len(data) - 1  # only the trailing newline was lost

    def test_tampered_payload_fails_digest(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"x": 1}, kind="run")
        envelope = json.loads(path.read_text())
        blob = envelope["payload"]
        envelope["payload"] = blob[:-4] + ("AAAA" if blob[-4:] != "AAAA" else "BBBB")
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointCorrupt, match="digest"):
            load_checkpoint(path)

    def test_missing_envelope_field_is_corrupt(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"x": 1}, kind="run")
        envelope = json.loads(path.read_text())
        del envelope["sha256"]
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointCorrupt, match="envelope"):
            load_checkpoint(path)

    def test_stale_schema_refused_naming_both_versions(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"x": 1}, kind="run")
        envelope = json.loads(path.read_text())
        envelope["schema"] = CHECKPOINT_SCHEMA + 7
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointSchemaMismatch) as exc_info:
            load_checkpoint(path)
        assert exc_info.value.found == CHECKPOINT_SCHEMA + 7
        assert exc_info.value.expected == CHECKPOINT_SCHEMA

    def test_wrong_kind_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"x": 1}, kind="engine")
        with pytest.raises(CheckpointMismatch):
            load_checkpoint(path, kind="run")

    def test_wrong_run_key_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, {"x": 1}, kind="run", run_key=run_key("a", 1))
        with pytest.raises(CheckpointMismatch, match="different run"):
            load_checkpoint(path, kind="run", expect_run_key=run_key("a", 2))


class TestRunKey:
    def test_deterministic(self):
        assert run_key("fig7", 0) == run_key("fig7", 0)

    def test_parts_matter(self):
        assert run_key("fig7", 0) != run_key("fig7", 1)
        assert run_key("fig7", 0) != run_key("ext-faults", 0)

    def test_structure_is_part_of_the_key(self):
        # Length-prefixed hashing: shifting content between parts must not
        # collide (the derive_seed lesson, applied to run identity).
        assert run_key("ab", "c") != run_key("a", "bc")


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_units=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(every_wall_s=0.0)

    def test_units_cadence(self, tmp_path):
        ck = Checkpointer(tmp_path / "ck.json", policy=CheckpointPolicy(every_units=3))
        saves = []
        for _ in range(7):
            ck.record_units(1)
            ck.maybe_save(lambda: saves.append(1) or {"n": len(saves)})
        assert ck.saves == 2  # after units 3 and 6

    def test_wall_clock_cadence_needs_progress(self, tmp_path):
        ck = Checkpointer(
            tmp_path / "ck.json",
            policy=CheckpointPolicy(every_units=10**9, every_wall_s=0.01),
        )
        assert not ck.due  # no units recorded: nothing new to persist
        ck.record_units(1)
        import time

        time.sleep(0.02)
        assert ck.due

    def test_abort_after_saves_raises_interrupted(self, tmp_path):
        ck = Checkpointer(tmp_path / "ck.json", abort_after_saves=2)
        ck.save({"n": 1})
        with pytest.raises(InterruptedRun) as exc_info:
            ck.save({"n": 2})
        assert exc_info.value.checkpoint_path == str(tmp_path / "ck.json")
        # The save COMPLETED before the simulated crash: the file is loadable
        # and holds the latest payload (crash lands on the checkpoint boundary).
        assert load_checkpoint(tmp_path / "ck.json") == {"n": 2}


class TestRunCheckpoint:
    def test_resume_round_trip(self, tmp_path):
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="k")
        rc.record("stage-a", 0, [1, 2], units=2)
        rc.record("stage-a", 1, [3], units=1)
        rc.record("stage-b", 0, ["x"], units=1)
        rc.flush()

        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        assert rc2.resumed
        assert rc2.completed("stage-a") == {0: [1, 2], 1: [3]}
        assert rc2.completed("stage-b") == {0: ["x"]}
        assert rc2.completed("stage-c") == {}

    def test_fresh_when_file_absent(self, tmp_path):
        rc = RunCheckpoint(tmp_path / "none.json", run_key="k", resume=True)
        assert not rc.resumed
        assert rc.completed("s") == {}

    def test_resume_refuses_foreign_run_key(self, tmp_path):
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="mine")
        rc.record("s", 0, [1])
        rc.flush()
        with pytest.raises(CheckpointMismatch):
            RunCheckpoint(path, run_key="theirs", resume=True)

    def test_state_providers_captured_at_save(self, tmp_path):
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="k")
        state = {"draws": 0}
        rc.add_state_provider("rng", lambda: dict(state))
        state["draws"] = 17
        rc.flush()
        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        assert rc2.extra_state("rng") == {"draws": 17}
        assert rc2.extra_state("absent") is None

    def test_chunk_indices_are_ints_after_resume(self, tmp_path):
        # JSON stringifies dict keys inside the pickled payload's stages map;
        # resume must hand back integer chunk indices.
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="k")
        rc.record("s", 3, ["r"])
        rc.flush()
        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        assert list(rc2.completed("s")) == [3]
        assert all(isinstance(i, int) for i in rc2.completed("s"))

    def test_stage_view_delegates(self, tmp_path):
        rc = RunCheckpoint(tmp_path / "run.json", run_key="k")
        stage = rc.stage("s")
        stage.record(0, [9])
        stage.flush()
        assert stage.completed() == {0: [9]}
        assert stage.path == str(tmp_path / "run.json")
