"""Supervised parallel map: parity, crash/hang retries, structured failure."""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import pytest

from repro.resilience.checkpoint import RunCheckpoint
from repro.resilience.errors import InterruptedRun, SupervisionError
from repro.resilience.supervisor import make_chunks, supervised_map
from repro.util.rng import derive_seed


def _value(x: int) -> int:
    """Seed-stable ground truth shared by every scenario."""
    return derive_seed(x, "supervised") % 997


def _square(x: int) -> int:
    return x * x


def _raises_on_seven(x: int) -> int:
    if x == 7:
        raise ValueError("deterministic failure")
    return x


def _kill_self(args) -> int:
    """SIGKILL this worker the first time it sees item 3."""
    x, scratch = args
    marker = Path(scratch) / f"seen-{x}"
    if x == 3 and not marker.exists():
        marker.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return _value(x)


def _always_kill(args) -> int:
    """SIGKILL unconditionally on item 3 — retries can never succeed."""
    x, _scratch = args
    if x == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return _value(x)


def _sleep_briefly(x: int) -> int:
    time.sleep(0.25)
    return _value(x)


def _hang_once(args) -> int:
    x, scratch = args
    marker = Path(scratch) / f"hung-{x}"
    if x == 3 and not marker.exists():
        marker.touch()
        time.sleep(60.0)
    return _value(x)


class TestMakeChunks:
    def test_covers_range_exactly(self):
        assert make_chunks(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert make_chunks(0, 4) == []
        assert make_chunks(3, 10) == [(0, 3)]

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValueError):
            make_chunks(5, 0)


class TestParity:
    def test_serial_equals_parallel(self):
        items = list(range(23))
        expected = [_square(x) for x in items]
        assert supervised_map(_square, items, workers=None) == expected
        assert supervised_map(_square, items, workers=3, chunksize=4) == expected

    def test_empty_items(self):
        assert supervised_map(_square, [], workers=3) == []

    def test_work_fn_exception_propagates_unretried(self):
        with pytest.raises(ValueError, match="deterministic failure"):
            supervised_map(_raises_on_seven, list(range(12)), workers=2, chunksize=3)


class TestCrashRecovery:
    def test_killed_worker_chunk_retried_bit_identical(self, tmp_path):
        items = [(x, str(tmp_path)) for x in range(14)]
        got = supervised_map(_kill_self, items, workers=2, chunksize=2)
        assert got == [_value(x) for x in range(14)]
        assert (tmp_path / "seen-3").exists()

    def test_unrecoverable_crash_is_structured(self, tmp_path):
        items = [(x, str(tmp_path)) for x in range(8)]
        with pytest.raises(SupervisionError) as exc_info:
            supervised_map(_always_kill, items, workers=2, chunksize=2, max_retries=1)
        err = exc_info.value
        assert err.failures
        assert all(f["kind"] == "crash" for f in err.failures)
        assert "chunk" in err.describe()

    def test_hung_worker_reaped_and_retried(self, tmp_path):
        items = [(x, str(tmp_path)) for x in range(8)]
        t0 = time.monotonic()
        got = supervised_map(_hang_once, items, workers=2, chunksize=2, deadline_s=1.5)
        assert time.monotonic() - t0 < 30.0
        assert got == [_value(x) for x in range(8)]

    def test_queue_wait_not_charged_against_deadline(self):
        # 8 one-item chunks on 2 workers: the tail chunks sit in the
        # executor queue well past the deadline before they ever run.  The
        # deadline clock must start at observed-running, not at submit —
        # with max_retries=0 a submit-time clock would spuriously fail this
        # healthy run with SupervisionError.
        items = list(range(8))
        got = supervised_map(
            _sleep_briefly, items, workers=2, chunksize=1,
            deadline_s=0.8, max_retries=0,
        )
        assert got == [_value(x) for x in items]


class TestCheckpointIntegration:
    def test_completed_chunks_skipped_on_resume(self, tmp_path):
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="k")
        items = list(range(10))
        first = supervised_map(_square, items, chunksize=2, checkpoint=rc.stage("s"))
        rc.flush()

        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        # A work function that would poison any re-executed chunk proves
        # every chunk came from the checkpoint.
        resumed = supervised_map(
            _raises_on_seven, items, chunksize=2, checkpoint=rc2.stage("s")
        )
        assert resumed == first

    def test_stale_chunk_geometry_is_recomputed_not_misused(self, tmp_path):
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="k")
        supervised_map(_square, list(range(10)), chunksize=2, checkpoint=rc.stage("s"))
        rc.flush()
        # Resuming with a different chunk size invalidates the recorded
        # geometry; results must still be exact (chunks silently re-run).
        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        got = supervised_map(_square, list(range(10)), chunksize=3, checkpoint=rc2.stage("s"))
        assert got == [_square(x) for x in range(10)]

    def test_same_length_chunk_from_other_geometry_not_spliced(self, tmp_path):
        # n=39: chunksize 3 makes chunk 9 = items[27:30]; chunksize 4 makes
        # chunk 9 = items[36:39] — same index, same length, different items.
        # Resuming across that chunking change must re-execute the chunk,
        # not serve the stored one (a length-only check would splice it).
        path = tmp_path / "run.json"
        items = list(range(39))
        rc = RunCheckpoint(path, run_key="k")
        supervised_map(_square, items, chunksize=3, checkpoint=rc.stage("s"))
        rc.flush()
        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        got = supervised_map(_square, items, chunksize=4, checkpoint=rc2.stage("s"))
        assert got == [_square(x) for x in items]

    def test_recorded_entries_carry_chunk_bounds(self, tmp_path):
        rc = RunCheckpoint(tmp_path / "run.json", run_key="k")
        supervised_map(_square, list(range(10)), chunksize=4, checkpoint=rc.stage("s"))
        entries = rc.completed("s")
        assert {(e["lo"], e["hi"]) for e in entries.values()} == set(make_chunks(10, 4))

    def test_chaos_abort_carries_progress_counts(self, tmp_path):
        path = tmp_path / "run.json"
        rc = RunCheckpoint(path, run_key="k", abort_after_saves=2)
        with pytest.raises(InterruptedRun) as exc_info:
            supervised_map(_square, list(range(10)), chunksize=1, checkpoint=rc.stage("s"))
        err = exc_info.value
        assert err.checkpoint_path == str(path)
        assert 0 < err.completed < 10
        assert err.total == 10
        assert "--resume" in err.resume_hint() or "durable" in err.resume_hint()

    def test_interrupted_then_resumed_equals_fresh(self, tmp_path):
        path = tmp_path / "run.json"
        items = list(range(10))
        fresh = [_square(x) for x in items]
        rc = RunCheckpoint(path, run_key="k", abort_after_saves=3)
        with pytest.raises(InterruptedRun):
            supervised_map(_square, items, chunksize=1, checkpoint=rc.stage("s"))
        rc2 = RunCheckpoint(path, run_key="k", resume=True)
        assert supervised_map(_square, items, chunksize=1, checkpoint=rc2.stage("s")) == fresh
