"""Snapshot/restore round-trip guarantees (repro.resilience.snapshot)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.engine import Engine, SimulationError
from repro.resilience.errors import SnapshotError
from repro.resilience.registry import encode_callback, register_callback
from repro.resilience.snapshot import (
    SNAPSHOT_VERSION,
    check_snapshot,
    decode_value,
    encode_value,
    restore_engine,
    restore_obs,
    restore_schedule,
    snapshot_engine,
    snapshot_obs,
    snapshot_schedule,
)

#: Global fire log the registered test callback appends to; cleared around
#: every run so original and restored engines write to fresh logs.
TRACE = []


@register_callback("tests.snapshot:trace")
def trace_cb(event) -> None:
    TRACE.append((event.engine.now, event._value))


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------


class TestValueCodec:
    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(),
            lambda inner: st.lists(inner, max_size=3)
            | st.tuples(inner, inner)
            | st.dictionaries(st.text(max_size=5), inner, max_size=3),
            max_leaves=10,
        )
    )
    def test_round_trip_is_type_exact(self, value):
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_exception_round_trip(self):
        exc = decode_value(encode_value(ValueError("boom", 3)))
        assert type(exc) is ValueError and exc.args == ("boom", 3)

    def test_custom_importable_exception_round_trip(self):
        exc = decode_value(encode_value(SimulationError("bad")))
        assert type(exc) is SimulationError and exc.args == ("bad",)

    def test_unsafe_value_refused(self):
        with pytest.raises(SnapshotError):
            encode_value(object())

    def test_non_string_dict_keys_refused(self):
        with pytest.raises(SnapshotError):
            encode_value({1: "x"})


# ---------------------------------------------------------------------------
# engine round trip
# ---------------------------------------------------------------------------


def _ops_strategy():
    timeout_op = st.tuples(
        st.just("timeout"),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False).map(lambda f: round(f, 3)),
        st.integers(min_value=-5, max_value=5),
    )
    event_op = st.tuples(
        st.just("event"),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False).map(lambda f: round(f, 3)),
        st.sampled_from([0, 1, 2]),
        st.integers(min_value=-5, max_value=5),
    )
    cancel_op = st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63))
    advance_op = st.tuples(
        st.just("advance"),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False).map(lambda f: round(f, 3)),
    )
    return st.lists(st.one_of(timeout_op, event_op, cancel_op, advance_op), max_size=40)


def _apply_ops(engine: Engine, ops) -> None:
    scheduled = []
    for op in ops:
        if op[0] == "timeout":
            ev = engine.timeout(op[1], op[2])
            ev.callbacks.append(trace_cb)
            scheduled.append(ev)
        elif op[0] == "event":
            ev = engine.event()
            ev.callbacks.append(trace_cb)
            ev.succeed(op[3], delay=op[1], priority=op[2])
            scheduled.append(ev)
        elif op[0] == "cancel":
            live = [e for e in scheduled if not e.processed and not e.cancelled]
            if live:
                live[op[1] % len(live)].cancel()
        elif op[0] == "advance":
            engine.run(until=engine.now + op[1])


class TestEngineRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops_strategy())
    def test_restored_engine_fires_event_for_event_identically(self, ops):
        """For arbitrary schedule/timeout/cancel/partial-run interleavings,
        a snapshot taken mid-run restores to an engine whose remaining
        execution is event-for-event identical: same (time, value) fire log,
        same final clock, same cumulative pop count."""
        engine = Engine()
        _apply_ops(engine, ops)
        snap = json.loads(json.dumps(snapshot_engine(engine)))

        TRACE.clear()
        engine.run()
        original = list(TRACE)
        final_now, final_fired = engine.now, engine.events_fired

        restored = restore_engine(snap)
        TRACE.clear()
        restored.run()
        assert list(TRACE) == original
        assert restored.now == final_now
        assert restored.events_fired == final_fired
        TRACE.clear()

    def test_tie_break_order_survives_restore(self):
        engine = Engine()
        for v in range(6):
            engine.timeout(1.0, v).callbacks.append(trace_cb)
        restored = restore_engine(snapshot_engine(engine))
        TRACE.clear()
        restored.run()
        assert [v for _t, v in TRACE] == [0, 1, 2, 3, 4, 5]
        TRACE.clear()

    def test_counter_continues_after_restore(self):
        engine = Engine()
        engine.timeout(1.0, "a").callbacks.append(trace_cb)
        restored = restore_engine(snapshot_engine(engine))
        # New events scheduled post-restore must sort after the old ones at
        # equal (time, priority) — the serialized counter guarantees it.
        restored.timeout(1.0, "b").callbacks.append(trace_cb)
        TRACE.clear()
        restored.run()
        assert [v for _t, v in TRACE] == ["a", "b"]
        TRACE.clear()

    def test_failed_defused_event_round_trips(self):
        engine = Engine()
        ev = engine.event()
        ev.fail(ValueError("expected"), delay=1.0)
        ev.defuse()
        restored = restore_engine(snapshot_engine(engine))
        restored.run()  # must not raise: defused flag survived
        assert restored.now == 1.0

    def test_timeout_pool_occupancy_survives(self):
        engine = Engine(pool_timeouts=True, pool_cap=8)
        for _ in range(5):
            engine.timeout(1.0)
        engine.run()
        assert len(engine._pool) > 0
        restored = restore_engine(snapshot_engine(engine))
        assert len(restored._pool) == len(engine._pool)
        restored.timeout(1.0)  # recycles from the restored slab
        restored.run()

    def test_live_process_refused(self):
        engine = Engine()

        def proc():
            yield engine.timeout(1.0)

        engine.process(proc())
        with pytest.raises(SnapshotError):
            snapshot_engine(engine)

    def test_unregistered_callback_refused(self):
        engine = Engine()
        engine.timeout(1.0).callbacks.append(lambda ev: None)
        with pytest.raises(SnapshotError):
            snapshot_engine(engine)

    def test_stale_version_refused(self):
        engine = Engine()
        snap = snapshot_engine(engine)
        snap["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            restore_engine(snap)

    def test_kind_mismatch_refused(self):
        with pytest.raises(SnapshotError, match="expected"):
            check_snapshot({"version": SNAPSHOT_VERSION, "kind": "rng"}, "engine")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_partial_of_registered_callback_round_trips(self):
        from functools import partial

        from repro.resilience.registry import resolve_callback

        record = encode_callback(partial(trace_cb))
        assert resolve_callback(record)
        # partial with positional JSON args
        rec2 = json.loads(json.dumps(encode_callback(partial(trace_cb))))
        assert callable(resolve_callback(rec2))

    def test_unregistered_function_refused(self):
        with pytest.raises(SnapshotError):
            encode_callback(lambda ev: None)

    def test_duplicate_name_refused(self):
        with pytest.raises(ValueError):

            @register_callback("tests.snapshot:trace")
            def other(event) -> None:  # pragma: no cover - must not register
                pass


# ---------------------------------------------------------------------------
# fault schedules
# ---------------------------------------------------------------------------


class TestScheduleRoundTrip:
    def test_windows_and_queries_survive(self):
        from repro.faults.schedule import compile_schedule
        from repro.faults.spec import ServerOutage

        sched = compile_schedule(
            [ServerOutage(mtbf_s=3600.0, repair_s=600.0)],
            horizon_s=86_400.0,
            n_servers=3,
            seed=5,
        )
        restored = restore_schedule(json.loads(json.dumps(snapshot_schedule(sched))))
        assert restored.windows == sched.windows
        assert restored.horizon_s == sched.horizon_s
        for t in range(0, 86_400, 1800):
            for target in range(3):
                assert restored.is_down("server-outage", target, float(t)) == sched.is_down(
                    "server-outage", target, float(t)
                )

    def test_empty_schedule_round_trips(self):
        from repro.faults.schedule import FaultSchedule

        sched = FaultSchedule.empty(1000.0)
        restored = restore_schedule(snapshot_schedule(sched))
        assert restored.windows == ()
        assert not restored.any_active


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestObsRoundTrip:
    def _populated_obs(self):
        from repro.obs import Obs

        obs = Obs()
        obs.metrics.counter("cycles").inc(7)
        obs.metrics.gauge("clients").set(42)
        h = obs.metrics.histogram("latency")
        for v in (0.1, 0.5, 2.0, 8.0):
            h.record(v)
        obs.ledger.add("transfer", 12.5, 3.0)
        obs.ledger.add("idle", 1.25, 60.0)
        obs.ledger.note_total(100.0)
        with obs.trace.span("cycle", 0):
            with obs.trace.span("upload", 0):
                pass
        return obs

    def test_snapshot_equality_after_restore(self):
        obs = self._populated_obs()
        restored = restore_obs(json.loads(json.dumps(snapshot_obs(obs))))
        assert restored.snapshot() == obs.snapshot()

    def test_ledger_continues_not_restarts(self):
        obs = self._populated_obs()
        restored = restore_obs(snapshot_obs(obs))
        restored.ledger.add("transfer", 1.0, 1.0)
        assert restored.ledger._energy["transfer"] == pytest.approx(13.5)
