"""CLI contract tests (PR 4): ``--json`` keeps stdout machine-parseable.

``repro-exp --json --plot`` used to risk interleaving ASCII charts with the
JSON stream; ``--json`` now wins — stdout carries exactly one parseable
JSON document and charts/diagnostics go to stderr.  The combination sweep
runs every registry experiment id against every output flag combination
with a stubbed runner (the contract is about stream routing, not the
experiments themselves), plus real fast experiments end to end.
"""

import itertools
import json

import pytest

from repro import cli
from repro.experiments.registry import experiment_ids
from repro.experiments.report import ExperimentResult


def _stub_result(eid: str) -> ExperimentResult:
    r = ExperimentResult(experiment_id=eid, title=f"stub {eid}")
    r.add_series("n_clients", [1, 2, 3, 4])
    r.add_series("edge_per_client_j", [4.0, 3.0, 2.5, 2.25])
    r.compare("crossover", 10.0, 10.0, tolerance_pct=5.0)
    r.notes.append("stub")
    return r


@pytest.fixture
def stub_runner(monkeypatch):
    calls = []

    def fake_run(eid, **kwargs):
        calls.append((eid, kwargs))
        return _stub_result(eid)

    monkeypatch.setattr(cli, "run_experiment", fake_run)
    return calls


#: Output-routing flags; --validate is exercised separately against a real
#: experiment (its schema checker rejects the stub by design).
_FLAG_SETS = [
    list(flags)
    for n in range(4)
    for flags in itertools.combinations(
        ["--plot", "--no-series", "--metrics", "--trace"], n
    )
]


class TestJsonStdoutStaysParseable:
    @pytest.mark.parametrize("eid", experiment_ids(include_extensions=True))
    @pytest.mark.parametrize("flags", _FLAG_SETS, ids=lambda f: "+".join(f) or "none")
    def test_every_id_and_flag_combination(self, stub_runner, capsys, eid, flags):
        assert cli.main([eid, "--json", *flags]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # must parse — charts may not interleave
        assert [p["experiment_id"] for p in payload] == [eid]

    def test_multiple_ids_one_document(self, stub_runner, capsys):
        assert cli.main(["fig6", "fig7", "--json", "--plot"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert len(payload) == 2
        # The charts went to stderr, not stdout.
        assert "edge_per_client_j" in captured.err

    def test_plot_still_on_stdout_without_json(self, stub_runner, capsys):
        assert cli.main(["fig6", "--plot"]) == 0
        captured = capsys.readouterr()
        assert "edge_per_client_j" in captured.out
        assert captured.err == ""


class TestObsSnapshotRouting:
    def test_snapshot_file_keeps_stdout_pure(self, stub_runner, capsys, tmp_path):
        out_file = tmp_path / "obs.json"
        assert cli.main(["fig6", "--json", "--obs-out", str(out_file)]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        snap = json.loads(out_file.read_text())
        assert snap["schema_version"] >= 1
        assert set(snap) >= {"metrics", "trace", "ledger", "run"}
        assert snap["run"]["ids"] == ["fig6"]

    def test_snapshot_to_stderr_by_default(self, stub_runner, capsys):
        assert cli.main(["fig6", "--json", "--metrics", "--trace"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert '"schema_version"' in captured.err


class TestRealExperiments:
    """End-to-end on fast analytic experiments — no stubbing."""

    @pytest.mark.parametrize("flags", [["--plot"], ["--no-series"], ["--validate"]])
    def test_fig6_json_parses(self, capsys, flags):
        assert cli.main(["fig6", "--json", *flags]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment_id"] == "fig6"

    def test_fig6_obs_snapshot_reconciles(self, capsys, tmp_path):
        out_file = tmp_path / "obs.json"
        assert cli.main(["fig6", "--json", "--obs-out", str(out_file)]) == 0
        json.loads(capsys.readouterr().out)
        snap = json.loads(out_file.read_text())
        ledger = snap["ledger"]
        assert ledger["reconciles"] is True
        assert ledger["expected_total_j"] is not None
        names = {s["name"] for s in snap["trace"]["spans"]}
        assert any(n.startswith("phase:") for n in names)
