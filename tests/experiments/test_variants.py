"""Robustness tests: experiments under non-default configurations."""

import numpy as np
import pytest

from repro.experiments.registry import run_experiment


class TestFig6Variants:
    def test_cnn_model(self):
        """The CNN service packs 17 slots (1.0 s execution) but the headline
        shapes survive: flat edge cost, converging server cost."""
        result = run_experiment("fig6", model="cnn")
        edge = result.series["edge_per_client_j"]
        assert np.allclose(edge, edge[0])
        # CNN server capacity: 17 slots x 10.
        assert "17 slots" in result.notes[0]

    def test_larger_parallel(self):
        result = run_experiment("fig6", max_parallel=35, n_max=700)
        # One server carries the whole 630-client range.
        n = result.series["n_clients"]
        servers = result.series["n_servers"]
        assert servers[n <= 630].max() == 1


class TestFig7Variants:
    def test_cnn_never_crosses(self):
        """§V's "no significant difference" between models holds at the
        *edge* (0.3%), but not for fleet-scale placement: the CNN's 108 J
        cloud execution exceeds the ~45 J offloading headroom per client, so
        edge+cloud with the CNN never wins on total energy at any admission
        cap — §VI's crossovers are an SVM-only phenomenon."""
        cnn = run_experiment("fig7", model="cnn")
        edge = cnn.series["edge_per_client_j"]
        cloud = cnn.series["edge_cloud_per_client_j_p35"]
        assert np.all(cloud > edge)
        assert any("no tipping capacity" in note for note in cnn.notes)

    def test_svm_crossover_exists(self):
        svm = run_experiment("fig7", model="svm")
        edge = svm.series["edge_per_client_j"]
        cloud = svm.series["edge_cloud_per_client_j_p35"]
        assert np.any(cloud <= edge)


class TestFig8Variants:
    def test_different_seed_same_structure(self):
        """Loss-C randomness moves individual points, not the structure."""
        a = run_experiment("fig8", seed=1)
        b = run_experiment("fig8", seed=2)
        # Deterministic comparisons identical across seeds.
        det = ["ideal server J/client (full)", "loss-A server J/client (full)",
               "servers @350 no loss", "servers @350 loss B"]
        for name in det:
            va = next(c.measured_value for c in a.comparisons if c.quantity == name)
            vb = next(c.measured_value for c in b.comparisons if c.quantity == name)
            assert va == vb
        # Stochastic dropout differs but stays near 10%.
        for result in (a, b):
            frac = next(c.measured_value for c in result.comparisons
                        if c.quantity == "loss-C mean dropout fraction")
            assert frac == pytest.approx(0.10, abs=0.02)


class TestFig3Variants:
    def test_custom_constants(self):
        """The experiment honors alternative calibration constants."""
        from dataclasses import replace

        from repro.core.calibration import PAPER

        hungry = replace(PAPER, sleep_watts=1.0, wake_surge_j=0.0)
        result = run_experiment("fig3", constants=hungry)
        powers = result.series["average_power_w"]
        # Floor rises to the new sleep power.
        assert powers[-1] > 1.0
