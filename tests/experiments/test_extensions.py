"""Tests for the future-work extension experiments."""

import numpy as np
import pytest

from repro.experiments.registry import EXTENSIONS, REGISTRY, experiment_ids, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {
            "ext-adaptive",
            "ext-contention",
            "ext-faults",
            "ext-mixed",
            "ext-training",
        }

    def test_ids_include_extensions_on_request(self):
        base = experiment_ids()
        full = experiment_ids(include_extensions=True)
        assert set(base) == set(REGISTRY)
        assert set(full) == set(REGISTRY) | set(EXTENSIONS)

    def test_run_by_id(self):
        result = run_experiment("ext-training")
        assert result.experiment_id == "ext-training"


class TestExtAdaptive:
    def test_full_uptime_and_yield(self):
        result = run_experiment("ext-adaptive", cloudiness_levels=(0.5,))
        for c in result.comparisons:
            assert c.within_tolerance is not False
        assert any("x the safe schedule" in n for n in result.notes)


class TestExtContention:
    def test_receive_time_grows_linearly(self):
        result = run_experiment("ext-contention", max_clients=6, n_trials=10)
        times = result.series["mean_receive_time_s"]
        assert np.all(np.diff(times) > 0)
        # Roughly linear: endpoint slope vs midpoint slope within 2x.
        k = result.series["occupancy"]
        slope_lo = (times[2] - times[0]) / (k[2] - k[0])
        slope_hi = (times[-1] - times[-3]) / (k[-1] - k[-3])
        assert 0.5 < slope_hi / slope_lo < 2.0

    def test_slope_same_regime_as_paper(self):
        result = run_experiment("ext-contention", max_clients=6, n_trials=10)
        slope = result.comparisons[0].measured_value
        assert 1.0 < slope < 5.0  # paper postulates 1.5 s/client


class TestExtMixed:
    def test_all_checks_pass(self):
        result = run_experiment("ext-mixed")
        for c in result.comparisons:
            assert c.within_tolerance is not False
        servers = result.series["servers_needed"]
        assert np.all(np.diff(servers) <= 0)  # slower periods never need more


class TestExtFaults:
    @pytest.fixture(scope="class")
    def result(self):
        # Small but complete run: 2 servers' worth of clients, a coarse
        # crossover grid, and 12 cycles per point (loss-C equivalence
        # section then uses 4x that).
        return run_experiment(
            "ext-faults",
            n_clients=70,
            n_cycles=48,
            crossover_sizes=(350, 650, 150),
        )

    def test_faults_off_reproduces_ideal_bit_for_bit(self, result):
        ideal = next(c for c in result.comparisons if "faults off" in c.quantity)
        assert ideal.measured_value == 0.0

    def test_availability_degrades_with_outage_rate(self, result):
        avail = result.series["availability"]
        cloud = result.series["cloud_availability"]
        # Fallback counts as served, so fleet availability never drops below
        # cloud availability; the latter degrades once servers go down.
        assert np.all(avail >= cloud)
        assert cloud[0] == 1.0  # no faults -> every upload lands
        assert cloud[-1] < 1.0  # 3 h MTBF -> some cycles served locally
        resil = result.series["resilience_j_per_client_cycle"]
        assert resil[0] == 0.0
        assert np.all(resil >= 0.0)
        assert resil[-1] > 0.0  # faults burn retry/failover/fallback joules

    def test_loss_c_matches_zero_repair_crash(self, result):
        c = next(c for c in result.comparisons if "zero-repair" in c.quantity)
        assert c.within_tolerance is not False

    def test_des_demo_table_rendered(self, result):
        assert any("mid-cycle server outage" in t for t in result.tables)


class TestExtTraining:
    def test_all_checks_pass(self):
        result = run_experiment("ext-training")
        for c in result.comparisons:
            assert c.within_tolerance is not False
        assert any("days" in n for n in result.notes)
