"""Tests for the future-work extension experiments."""

import numpy as np
import pytest

from repro.experiments.registry import EXTENSIONS, REGISTRY, experiment_ids, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {"ext-adaptive", "ext-contention", "ext-mixed", "ext-training"}

    def test_ids_include_extensions_on_request(self):
        base = experiment_ids()
        full = experiment_ids(include_extensions=True)
        assert set(base) == set(REGISTRY)
        assert set(full) == set(REGISTRY) | set(EXTENSIONS)

    def test_run_by_id(self):
        result = run_experiment("ext-training")
        assert result.experiment_id == "ext-training"


class TestExtAdaptive:
    def test_full_uptime_and_yield(self):
        result = run_experiment("ext-adaptive", cloudiness_levels=(0.5,))
        for c in result.comparisons:
            assert c.within_tolerance is not False
        assert any("x the safe schedule" in n for n in result.notes)


class TestExtContention:
    def test_receive_time_grows_linearly(self):
        result = run_experiment("ext-contention", max_clients=6, n_trials=10)
        times = result.series["mean_receive_time_s"]
        assert np.all(np.diff(times) > 0)
        # Roughly linear: endpoint slope vs midpoint slope within 2x.
        k = result.series["occupancy"]
        slope_lo = (times[2] - times[0]) / (k[2] - k[0])
        slope_hi = (times[-1] - times[-3]) / (k[-1] - k[-3])
        assert 0.5 < slope_hi / slope_lo < 2.0

    def test_slope_same_regime_as_paper(self):
        result = run_experiment("ext-contention", max_clients=6, n_trials=10)
        slope = result.comparisons[0].measured_value
        assert 1.0 < slope < 5.0  # paper postulates 1.5 s/client


class TestExtMixed:
    def test_all_checks_pass(self):
        result = run_experiment("ext-mixed")
        for c in result.comparisons:
            assert c.within_tolerance is not False
        servers = result.series["servers_needed"]
        assert np.all(np.diff(servers) <= 0)  # slower periods never need more


class TestExtTraining:
    def test_all_checks_pass(self):
        result = run_experiment("ext-training")
        for c in result.comparisons:
            assert c.within_tolerance is not False
        assert any("days" in n for n in result.notes)
