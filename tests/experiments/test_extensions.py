"""Tests for the future-work extension experiments."""

import numpy as np
import pytest

from repro.experiments.registry import EXTENSIONS, REGISTRY, experiment_ids, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSIONS) == {
            "ext-adaptive",
            "ext-contention",
            "ext-faults",
            "ext-mixed",
            "ext-outage",
            "ext-policies",
            "ext-serve",
            "ext-serve-faults",
            "ext-training",
        }

    def test_ids_include_extensions_on_request(self):
        base = experiment_ids()
        full = experiment_ids(include_extensions=True)
        assert set(base) == set(REGISTRY)
        assert set(full) == set(REGISTRY) | set(EXTENSIONS)

    def test_run_by_id(self):
        result = run_experiment("ext-training")
        assert result.experiment_id == "ext-training"


class TestExtAdaptive:
    def test_full_uptime_and_yield(self):
        result = run_experiment("ext-adaptive", cloudiness_levels=(0.5,))
        for c in result.comparisons:
            assert c.within_tolerance is not False
        assert any("x the safe schedule" in n for n in result.notes)


class TestExtContention:
    def test_receive_time_grows_linearly(self):
        result = run_experiment("ext-contention", max_clients=6, n_trials=10)
        times = result.series["mean_receive_time_s"]
        assert np.all(np.diff(times) > 0)
        # Roughly linear: endpoint slope vs midpoint slope within 2x.
        k = result.series["occupancy"]
        slope_lo = (times[2] - times[0]) / (k[2] - k[0])
        slope_hi = (times[-1] - times[-3]) / (k[-1] - k[-3])
        assert 0.5 < slope_hi / slope_lo < 2.0

    def test_slope_same_regime_as_paper(self):
        result = run_experiment("ext-contention", max_clients=6, n_trials=10)
        slope = result.comparisons[0].measured_value
        assert 1.0 < slope < 5.0  # paper postulates 1.5 s/client


class TestExtMixed:
    def test_all_checks_pass(self):
        result = run_experiment("ext-mixed")
        for c in result.comparisons:
            assert c.within_tolerance is not False
        servers = result.series["servers_needed"]
        assert np.all(np.diff(servers) <= 0)  # slower periods never need more


class TestExtFaults:
    @pytest.fixture(scope="class")
    def result(self):
        # Small but complete run: 2 servers' worth of clients, a coarse
        # crossover grid, and 12 cycles per point (loss-C equivalence
        # section then uses 4x that).
        return run_experiment(
            "ext-faults",
            n_clients=70,
            n_cycles=48,
            crossover_sizes=(350, 650, 150),
        )

    def test_faults_off_reproduces_ideal_bit_for_bit(self, result):
        ideal = next(c for c in result.comparisons if "faults off" in c.quantity)
        assert ideal.measured_value == 0.0

    def test_availability_degrades_with_outage_rate(self, result):
        avail = result.series["availability"]
        cloud = result.series["cloud_availability"]
        # Fallback counts as served, so fleet availability never drops below
        # cloud availability; the latter degrades once servers go down.
        assert np.all(avail >= cloud)
        assert cloud[0] == 1.0  # no faults -> every upload lands
        assert cloud[-1] < 1.0  # 3 h MTBF -> some cycles served locally
        resil = result.series["resilience_j_per_client_cycle"]
        assert resil[0] == 0.0
        assert np.all(resil >= 0.0)
        assert resil[-1] > 0.0  # faults burn retry/failover/fallback joules

    def test_loss_c_matches_zero_repair_crash(self, result):
        c = next(c for c in result.comparisons if "zero-repair" in c.quantity)
        assert c.within_tolerance is not False

    def test_des_demo_table_rendered(self, result):
        assert any("mid-cycle server outage" in t for t in result.tables)


class TestExtOutage:
    @pytest.fixture(scope="class")
    def result(self):
        # Same reduced configuration as the golden case and the JSON-schema
        # sweep: 2 servers' worth of clients, a coarse crossover grid.
        return run_experiment(
            "ext-outage",
            n_clients=70,
            n_cycles=12,
            crossover_sizes=(350, 650, 150),
        )

    def test_zero_outage_schedule_is_the_identity(self, result):
        for quantity in (
            "ideal-path max |Δ| (J, zero-outage schedule)",
            "fig7 curve max |Δ| (J/client, zero-outage)",
        ):
            c = next(c for c in result.comparisons if c.quantity == quantity)
            assert c.measured_value == 0.0
        cross = next(c for c in result.comparisons if "ideal vs zero-outage" in c.quantity)
        assert cross.measured_value == cross.paper_value

    def test_delivered_fraction_degrades_with_harshness(self, result):
        # Grid rows are (pattern x capacity); "none" rows deliver everything.
        frac = result.series["grid_delivered_fraction"]
        none_rows, harsh_rows = frac[0:3], frac[9:12]
        assert np.all(none_rows == 1.0)
        assert np.all(harsh_rows < 1.0)

    def test_availability_survives_outages(self, result):
        avail = result.series["grid_availability"]
        assert np.all(avail > 0.8)  # buffered cycles still detect locally

    def test_resilience_joules_appear_under_outages(self, result):
        resil = result.series["grid_resilience_j_per_client_cycle"]
        assert np.all(resil[0:3] == 0.0)  # "none" pattern: strictly additive
        assert np.all(resil[3:] > 0.0)

    def test_policy_rows_cover_all_policies(self, result):
        assert len(result.series["policy_availability"]) == 3
        assert any("Overflow policy" in t for t in result.tables)

    def test_crossover_series_present(self, result):
        for kind in ("none", "daily", "harsh"):
            assert f"crossover_total_j_{kind}" in result.series
        assert any("crossover" in t.lower() for t in result.tables)

    def test_des_demo_conserves(self, result):
        c = next(c for c in result.comparisons if "conservation" in c.quantity)
        assert c.measured_value == 0.0


class TestExtServe:
    @pytest.fixture(scope="class")
    def result(self):
        # Same reduced grid as the JSON-schema sweep: one small fleet, one
        # rate on each side of the knee, a short horizon.
        return run_experiment(
            "ext-serve",
            fleet_sizes=(8,),
            rate_multiples=(0.5, 1.5),
            horizon_cycles=4,
        )

    def test_live_allocation_bit_identical_to_batch(self, result):
        c = next(c for c in result.comparisons if "live vs batch" in c.quantity)
        assert c.measured_value == 0.0
        assert c.within_tolerance is True

    def test_latency_knee(self, result):
        p50 = result.series["p50_latency_s_8"]
        p99 = result.series["p99_latency_s_8"]
        # Below the knee the median waits less than one slot cycle (mean
        # alignment wait is half a period); past it the open-loop backlog
        # pushes both quantiles well beyond.
        assert p50[0] < 300.0
        assert p50[1] > 300.0
        assert p99[1] > 2.0 * p99[0]

    def test_every_inference_placed_cloud(self, result):
        table = result.tables[0]
        assert "saturation knee" in table
        assert result.series["rate_multiple"].tolist() == [0.5, 1.5]

    def test_deterministic_rerun(self, result):
        again = run_experiment(
            "ext-serve", fleet_sizes=(8,), rate_multiples=(0.5, 1.5), horizon_cycles=4
        )
        for key in ("p50_latency_s_8", "p99_latency_s_8"):
            assert np.array_equal(result.series[key], again.series[key])


REDUCED_SERVE_FAULTS = dict(
    policies=("first-fit",),
    fault_levels=(0.0, 3.0),
    queue_bounds=(None, 8),
    n_hives=12,
    horizon_cycles=4,
)


class TestExtServeFaults:
    @pytest.fixture(scope="class")
    def result(self):
        # Same reduced grid as the JSON-schema sweep: one policy, one
        # finite fault level, one finite bound, a short horizon.
        return run_experiment("ext-serve-faults", **REDUCED_SERVE_FAULTS)

    def test_zero_fault_config_is_bit_identical(self, result):
        c = next(c for c in result.comparisons if "trace drift" in c.quantity)
        assert c.measured_value == 0.0
        assert c.within_tolerance is True

    def test_conservation_holds_everywhere(self, result):
        c = next(c for c in result.comparisons if "offered" in c.quantity)
        assert c.measured_value == 0.0
        assert c.within_tolerance is True

    def test_faults_degrade_to_edge_and_charge_retries(self, result):
        edge = result.series["edge_fraction_first-fit_unbounded"]
        retry = result.series["retry_energy_j_first-fit_unbounded"]
        assert edge[0] == 0.0 and retry[0] == 0.0  # fault-free baseline
        assert edge[1] > 0.0  # server-down/dark windows push work on-hive
        assert retry[1] > 0.0  # in-flight retry ladder burned radio energy

    def test_bounded_queue_sheds_deterministically(self, result):
        shed = result.series["shed_fraction_first-fit_q8"]
        avail = result.series["availability_first-fit_q8"]
        assert shed[0] > 0.0  # oversaturated open loop hits the bound
        assert np.allclose(avail + shed, 1.0)  # nothing errored on this grid

    def test_unbounded_zero_fault_serves_everything(self, result):
        avail = result.series["availability_first-fit_unbounded"]
        assert avail[0] == 1.0

    def test_deterministic_rerun(self, result):
        again = run_experiment("ext-serve-faults", **REDUCED_SERVE_FAULTS)
        for key in sorted(result.series):
            assert np.array_equal(result.series[key], again.series[key]), key


class TestExtTraining:
    def test_all_checks_pass(self):
        result = run_experiment("ext-training")
        for c in result.comparisons:
            assert c.within_tolerance is not False
        assert any("days" in n for n in result.notes)
