"""End-to-end experiment tests: every table/figure runs and hits the paper.

The heavier experiments (fig5 at full sizes, fig2 at a week) run reduced
configurations here; the benchmark suite exercises the full-scale variants.
"""

import numpy as np
import pytest

from repro.experiments.registry import REGISTRY, experiment_ids, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(experiment_ids()) == {
            "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2",
        }

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="fig3"):
            run_experiment("fig99")


def assert_all_within_tolerance(result):
    failures = [
        f"{c.quantity}: paper={c.paper_value} measured={c.measured_value} ({c.deviation_pct:+.1f}%)"
        for c in result.comparisons
        if c.within_tolerance is False
    ]
    assert not failures, f"{result.experiment_id} deviates:\n" + "\n".join(failures)


class TestTables:
    def test_table1(self):
        result = run_experiment("table1")
        assert_all_within_tolerance(result)
        assert len(result.tables) == 2

    def test_table2(self):
        result = run_experiment("table2")
        assert_all_within_tolerance(result)
        assert len(result.tables) == 4


class TestFig3:
    def test_curve_and_anchors(self):
        result = run_experiment("fig3")
        assert_all_within_tolerance(result)
        powers = result.series["average_power_w"]
        assert np.all(np.diff(powers) < 0)
        assert powers[0] == pytest.approx(1.19, abs=0.01)


class TestFig2:
    def test_reduced_trace(self):
        result = run_experiment("fig2", days=2.0, seed=11)
        assert_all_within_tolerance(result)
        assert result.series["available"].mean() < 1.0  # outages exist
        assert result.series["fig2b_watts"].max() > 2.0  # wake-up spikes


class TestFig5:
    def test_reduced_sweep(self):
        from repro.audio.dataset import DatasetSpec

        result = run_experiment(
            "fig5",
            sizes=(20, 60, 100),
            dataset_spec=DatasetSpec.small(n_samples=120, clip_duration=2.0, seed=0),
        )
        assert_all_within_tolerance(result)
        acc = result.series["accuracy"]
        joules = result.series["inference_joules"]
        assert acc[-1] > acc[0]  # accuracy improves with resolution
        assert np.all(np.diff(joules) > 0)  # energy grows with size
        # Energy anchor is exact by calibration.
        assert joules[-1] == pytest.approx(94.8)


class TestFig6:
    def test_ideal_simulation(self):
        result = run_experiment("fig6")
        assert_all_within_tolerance(result)
        edge = result.series["edge_per_client_j"]
        assert np.allclose(edge, edge[0])  # flat edge cost (paper's red line)
        # Server count is a non-decreasing staircase.
        assert np.all(np.diff(result.series["n_servers"]) >= 0)


class TestFig7:
    def test_crossovers(self):
        result = run_experiment("fig7")
        assert_all_within_tolerance(result)
        p10 = result.series["edge_cloud_per_client_j_p10"]
        edge = result.series["edge_per_client_j"]
        assert np.all(p10 > edge)  # 10/slot never wins (paper: blue area only)

    def test_permanent_crossover_shape(self):
        """The permanent-crossover location is knife-edge sensitive (see
        EXPERIMENTS.md); assert the qualitative band rather than the value."""
        from repro.core.crossover import find_crossover

        result = run_experiment("fig7")
        n = result.series["n_clients"]
        rep = find_crossover(
            n, result.series["edge_per_client_j"], result.series["edge_cloud_per_client_j_p35"]
        )
        assert rep.permanent_crossover is not None
        assert 630 <= rep.permanent_crossover <= 1400


class TestFig8:
    def test_losses(self):
        result = run_experiment("fig8")
        assert_all_within_tolerance(result)
        # Loss A raises server cost relative to ideal everywhere at scale.
        ideal = result.series["server_per_client_j_no_loss"]
        loss_a = result.series["server_per_client_j_loss_a"]
        n = result.series["n_clients"]
        at_scale = n >= 100
        assert np.all(loss_a[at_scale] >= ideal[at_scale] - 1e-9)

    def test_loss_b_needs_more_servers(self):
        result = run_experiment("fig8")
        assert np.all(
            result.series["n_servers_loss_b"] >= result.series["n_servers_no_loss"]
        )


class TestFig9:
    def test_loss_crossover(self):
        result = run_experiment("fig9")
        assert_all_within_tolerance(result)
        # 3 servers across the 1600-1750 band (paper's operational claim).
        n = result.series["n_clients"]
        band = (n >= 1600) & (n <= 1750)
        assert np.all(result.series["n_servers"][band] == 3)


class TestRendering:
    def test_render_produces_comparison_table(self):
        result = run_experiment("table1")
        out = result.render()
        assert "paper vs measured" in out
        assert "Scenario" in out
