"""Tests for the placement-policy comparison experiment (ext-policies)."""

import json

import numpy as np

from repro.core.placement import POLICY_KINDS
from repro.experiments.registry import run_experiment

GRID = {"fleet_sizes": (100, 350)}


def run_once():
    return run_experiment("ext-policies", **GRID)


class TestExtPolicies:
    def test_all_pins_hold(self):
        result = run_once()
        pins = {c.quantity: c for c in result.comparisons}
        identity = pins["live churn vs batch allocation, max |Δ| slots"]
        assert identity.measured_value == 0.0
        assert identity.within_tolerance is True
        spread = pins["server-count spread across policies"]
        assert spread.measured_value == 0.0
        solar = pins["solar-budget tops the solar-alignment ranking"]
        assert solar.measured_value == 1.0

    def test_series_cover_every_policy(self):
        result = run_once()
        for kind in POLICY_KINDS:
            for prefix in ("server_energy_j_none_", "server_energy_j_ab_",
                           "solar_alignment_wm2_"):
                series = result.series[f"{prefix}{kind}"]
                assert len(series) == len(GRID["fleet_sizes"])
                assert np.all(np.asarray(series) >= 0)
        # loss A+B always costs at least the loss-free layout
        for kind in POLICY_KINDS:
            none = np.asarray(result.series[f"server_energy_j_none_{kind}"])
            ab = np.asarray(result.series[f"server_energy_j_ab_{kind}"])
            assert np.all(ab >= none)

    def test_solar_budget_alignment_dominates(self):
        result = run_once()
        solar = np.asarray(result.series["solar_alignment_wm2_solar-budget"])
        for kind in POLICY_KINDS:
            other = np.asarray(result.series[f"solar_alignment_wm2_{kind}"])
            assert np.all(solar >= other)

    def test_fingerprint_is_deterministic_and_json_safe(self):
        a = run_once().fingerprint()
        b = run_once().fingerprint()
        assert a == b
        encoded = json.dumps(a, sort_keys=True)
        assert json.loads(encoded) == a

    def test_matches_committed_golden(self):
        from repro.validate.golden import diff_fingerprints, load_golden

        stored = load_golden("ext-policies")
        fresh = run_experiment("ext-policies", fleet_sizes=(100, 350), seed=0)
        assert diff_fingerprints(stored["fingerprint"], fresh.fingerprint()) == []
