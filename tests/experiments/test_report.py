"""Tests for the experiment-result containers."""

import numpy as np
import pytest

from repro.experiments.report import Comparison, ExperimentResult


class TestComparison:
    def test_deviation(self):
        c = Comparison("x", paper_value=100.0, measured_value=110.0)
        assert c.deviation_pct == pytest.approx(10.0)

    def test_within_tolerance(self):
        assert Comparison("x", 100.0, 105.0, tolerance_pct=10.0).within_tolerance is True
        assert Comparison("x", 100.0, 120.0, tolerance_pct=10.0).within_tolerance is False
        assert Comparison("x", 100.0, 120.0).within_tolerance is None

    def test_zero_paper_value(self):
        assert Comparison("x", 0.0, 0.0).deviation_pct == 0.0
        assert Comparison("x", 0.0, 1.0).deviation_pct == float("inf")


class TestExperimentResult:
    def make(self):
        r = ExperimentResult("figX", "A title", description="desc")
        r.add_series("xs", [1, 2, 3])
        r.compare("quantity", 10.0, 10.5, tolerance_pct=10.0)
        r.tables.append("| a table |")
        r.notes.append("a note")
        return r

    def test_series_stored_as_arrays(self):
        r = self.make()
        assert isinstance(r.series["xs"], np.ndarray)

    def test_render_sections(self):
        out = self.make().render()
        assert "figX" in out and "A title" in out
        assert "a table" in out
        assert "paper vs measured" in out
        assert "note: a note" in out

    def test_comparison_table_flags(self):
        r = ExperimentResult("f", "t")
        r.compare("good", 10.0, 10.1, tolerance_pct=5.0)
        r.compare("bad", 10.0, 20.0, tolerance_pct=5.0)
        table = r.comparison_table()
        assert "ok" in table and "DEVIATES" in table

    def test_to_dict(self):
        d = self.make().to_dict()
        assert d["experiment_id"] == "figX"
        assert d["series"]["xs"] == [1, 2, 3]
        assert d["comparisons"][0]["within_tolerance"] is True
        assert d["notes"] == ["a note"]

    def test_to_dict_without_series(self):
        d = self.make().to_dict(include_series=False)
        assert "series" not in d

    def test_to_dict_json_serializable(self):
        import json

        json.dumps(self.make().to_dict())
