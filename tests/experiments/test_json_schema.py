"""Round-trip schema validation of every experiment's ``--json`` output.

Each registry id (paper experiments and extensions) runs once with reduced
kwargs, its result is serialized to JSON and back, and the decoded payload
must satisfy the shared shape contract in :mod:`repro.validate.schema` —
the same contract ``repro-exp --validate`` enforces at the CLI.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.audio.dataset import DatasetSpec
from repro.experiments.registry import EXTENSIONS, REGISTRY, run_experiment
from repro.validate import InvariantViolation, check_experiment_dict, check_experiment_result

#: Reduced kwargs so the whole sweep stays tier-1 fast (mirrors the reduced
#: configs used by tests/experiments/test_extensions.py).
REDUCED_KWARGS = {
    "fig2": {"days": 2.0, "seed": 11},
    "fig5": {
        "sizes": (20, 60, 100),
        "dataset_spec": DatasetSpec.small(n_samples=120, clip_duration=2.0, seed=5),
    },
    "ext-adaptive": {"cloudiness_levels": (0.5,)},
    "ext-contention": {"max_clients": 6, "n_trials": 10},
    "ext-faults": {"n_clients": 70, "n_cycles": 12, "crossover_sizes": (350, 650, 150)},
    "ext-outage": {"n_clients": 70, "n_cycles": 12, "crossover_sizes": (350, 650, 150)},
    "ext-policies": {"fleet_sizes": (100, 350)},
    "ext-serve": {"fleet_sizes": (8,), "rate_multiples": (0.5, 1.5), "horizon_cycles": 4},
    "ext-serve-faults": {
        "policies": ("first-fit",),
        "fault_levels": (0.0, 3.0),
        "queue_bounds": (None, 8),
        "n_hives": 12,
        "horizon_cycles": 4,
    },
}

ALL_IDS = sorted(set(REGISTRY) | set(EXTENSIONS))


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (module-cached; the slow part of this file)."""
    return {
        eid: run_experiment(eid, **REDUCED_KWARGS.get(eid, {})) for eid in ALL_IDS
    }


@pytest.mark.parametrize("eid", ALL_IDS)
def test_json_round_trip_satisfies_schema(results, eid):
    decoded = check_experiment_result(results[eid], include_series=True)
    assert decoded["experiment_id"] == eid


@pytest.mark.parametrize("eid", ALL_IDS)
def test_no_series_variant_also_valid(results, eid):
    decoded = check_experiment_result(results[eid], include_series=False)
    assert "series" not in decoded


@pytest.mark.parametrize("eid", ALL_IDS)
def test_every_number_is_finite(results, eid):
    payload = json.loads(json.dumps(results[eid].to_dict(include_series=True)))

    def walk(node):
        if isinstance(node, dict):
            for v in node.values():
                walk(v)
        elif isinstance(node, list):
            for v in node:
                walk(v)
        elif isinstance(node, float):
            assert math.isfinite(node)

    for comparison in payload["comparisons"]:
        # deviation_pct may be inf only for paper == 0 regression pins
        if comparison["paper"] != 0:
            assert math.isfinite(comparison["deviation_pct"]), comparison["quantity"]
    walk(payload.get("series", {}))


@pytest.mark.parametrize("eid", ALL_IDS)
def test_fingerprint_is_json_stable(results, eid):
    fp = results[eid].fingerprint()
    assert fp == json.loads(json.dumps(fp))
    assert fp["experiment_id"] == eid
    for summary in fp["series"].values():
        assert set(summary) == {"n", "first", "last", "min", "max", "mean", "sha256"}


class TestSchemaRejects:
    def _valid(self):
        return {
            "experiment_id": "x",
            "title": "t",
            "description": "",
            "comparisons": [
                {
                    "quantity": "q",
                    "paper": 1.0,
                    "measured": 1.0,
                    "deviation_pct": 0.0,
                    "within_tolerance": True,
                }
            ],
            "notes": [],
        }

    def test_valid_passes(self):
        check_experiment_dict(self._valid(), "x")

    def test_missing_key(self):
        payload = self._valid()
        del payload["title"]
        with pytest.raises(InvariantViolation, match="missing top-level key"):
            check_experiment_dict(payload, "x")

    def test_unknown_key(self):
        payload = self._valid()
        payload["bonus"] = 1
        with pytest.raises(InvariantViolation, match="unknown top-level keys"):
            check_experiment_dict(payload, "x")

    def test_non_finite_measured(self):
        payload = self._valid()
        payload["comparisons"][0]["measured"] = float("nan")
        with pytest.raises(InvariantViolation):
            check_experiment_dict(payload, "x")

    def test_infinite_deviation_needs_zero_paper(self):
        payload = self._valid()
        payload["comparisons"][0]["deviation_pct"] = float("inf")
        with pytest.raises(InvariantViolation, match="non-finite deviation"):
            check_experiment_dict(payload, "x")
        payload["comparisons"][0]["paper"] = 0
        check_experiment_dict(payload, "x")  # regression pin: allowed

    def test_non_numeric_series(self):
        payload = self._valid()
        payload["series"] = {"curve": [1.0, "two"]}
        with pytest.raises(InvariantViolation, match="non-numeric"):
            check_experiment_dict(payload, "x")

    def test_overly_nested_series(self):
        payload = self._valid()
        payload["series"] = {"curve": [[[[1.0]]]]}
        with pytest.raises(InvariantViolation, match="nests deeper"):
            check_experiment_dict(payload, "x")
