"""Tests for the queen-detection corpus builder."""

import numpy as np
import pytest

from repro.audio.dataset import DatasetSpec, QueenDataset


class TestDatasetSpec:
    def test_paper_scale(self):
        spec = DatasetSpec.paper()
        assert spec.n_samples == 1647
        assert spec.clip_duration == 10.0
        assert spec.sample_rate == 22050

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(n_samples=1)
        with pytest.raises(ValueError):
            DatasetSpec(clip_duration=0.0)
        with pytest.raises(ValueError):
            DatasetSpec(queen_fraction=1.5)


class TestQueenDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return QueenDataset(DatasetSpec.small(n_samples=40, clip_duration=0.5, seed=1))

    def test_length(self, ds):
        assert len(ds) == 40

    def test_balanced_labels(self, ds):
        labels = ds.labels
        assert labels.sum() == 20

    def test_custom_balance(self):
        ds = QueenDataset(DatasetSpec(n_samples=10, clip_duration=0.5, queen_fraction=0.3, seed=1))
        assert ds.labels.sum() == 3

    def test_clip_deterministic(self, ds):
        a, la = ds.clip(5)
        b, lb = ds.clip(5)
        np.testing.assert_array_equal(a, b)
        assert la == lb

    def test_clips_differ(self, ds):
        a, _ = ds.clip(0)
        b, _ = ds.clip(1)
        assert not np.array_equal(a, b)

    def test_index_bounds(self, ds):
        with pytest.raises(IndexError):
            ds.clip(40)
        with pytest.raises(IndexError):
            ds.clip(-1)

    def test_iteration_matches_clip(self, ds):
        for i, (clip, label) in enumerate(ds):
            if i >= 3:
                break
            expected_clip, expected_label = ds.clip(i)
            np.testing.assert_array_equal(clip, expected_clip)
            assert label == expected_label

    def test_features_extraction(self, ds):
        X, y = ds.features(lambda clip: np.array([clip.mean(), clip.std()]))
        assert X.shape == (40, 2)
        assert y.shape == (40,)
        np.testing.assert_array_equal(y, ds.labels)

    def test_labels_shuffled_not_blocked(self, ds):
        # Classes interleave rather than sitting in contiguous halves.
        labels = ds.labels
        transitions = int(np.sum(labels[1:] != labels[:-1]))
        assert transitions > 5

    def test_seed_changes_labels_and_audio(self):
        a = QueenDataset(DatasetSpec.small(n_samples=40, clip_duration=0.5, seed=1))
        b = QueenDataset(DatasetSpec.small(n_samples=40, clip_duration=0.5, seed=2))
        clip_a, _ = a.clip(0)
        clip_b, _ = b.clip(0)
        assert not np.array_equal(clip_a, clip_b)
