"""Tests for the hive-sound synthesizer."""

import numpy as np
import pytest

from repro.audio.synth import (
    QUEENLESS,
    QUEENRIGHT,
    HiveSoundSynthesizer,
    SynthParams,
    class_separation,
    narrowed,
)


@pytest.fixture(scope="module")
def synth():
    return HiveSoundSynthesizer()


class TestRender:
    def test_shape_and_dtype(self, synth):
        clip = synth.render(1.0, queen_present=True, seed=0)
        assert clip.shape == (22050,)
        assert clip.dtype == np.float32

    def test_amplitude_bounded(self, synth):
        for seed in range(5):
            clip = synth.render(0.5, queen_present=bool(seed % 2), seed=seed)
            assert np.abs(clip).max() <= 1.0

    def test_reproducible(self, synth):
        a = synth.render(0.5, True, seed=42)
        b = synth.render(0.5, True, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self, synth):
        a = synth.render(0.5, True, seed=1)
        b = synth.render(0.5, True, seed=2)
        assert not np.array_equal(a, b)

    def test_nonzero_signal(self, synth):
        clip = synth.render(0.5, False, seed=0)
        assert np.std(clip) > 0.01

    def test_duration_validation(self, synth):
        with pytest.raises(ValueError):
            synth.render(0.0, True)

    def test_min_sample_rate(self):
        with pytest.raises(ValueError):
            HiveSoundSynthesizer(sample_rate=1000)


class TestSpectralStructure:
    def _spectrum(self, clip, sr=22050):
        spec = np.abs(np.fft.rfft(clip * np.hanning(len(clip)))) ** 2
        freqs = np.fft.rfftfreq(len(clip), 1 / sr)
        return freqs, spec

    def test_hum_fundamental_present(self, synth):
        clip = synth.render(2.0, True, seed=3)
        freqs, spec = self._spectrum(clip)
        # Energy near the wing-beat fundamental (~230 Hz ± jitter) should
        # exceed energy in a quiet reference band (5-6 kHz).
        f0_band = spec[(freqs > 180) & (freqs < 280)].mean()
        quiet = spec[(freqs > 5000) & (freqs < 6000)].mean()
        assert f0_band > 20 * quiet

    def test_queenright_piping_single_peak(self, synth):
        clip = synth.render(4.0, True, seed=5)
        freqs, spec = self._spectrum(clip)
        piping = spec[(freqs > 350) & (freqs < 460)]
        assert piping.max() > 0

    def test_split_changes_fine_structure_not_band_energy(self, synth):
        """The queenless split relocates energy within the 400 Hz region but
        keeps the total band power comparable — the cue is positional."""
        qr_band, ql_band = [], []
        for seed in range(6):
            for present, store in ((True, qr_band), (False, ql_band)):
                clip = synth.render(2.0, present, seed=seed)
                freqs, spec = self._spectrum(clip)
                store.append(spec[(freqs > 320) & (freqs < 480)].sum() / spec.sum())
        assert np.mean(ql_band) == pytest.approx(np.mean(qr_band), rel=0.4)


class TestHelpers:
    def test_class_separation_default(self, synth):
        assert class_separation(synth) == pytest.approx(70.0)

    def test_narrowed_zero_makes_classes_identical(self, synth):
        flat = narrowed(synth, 0.0)
        assert class_separation(flat) == 0.0
        a = flat.render(0.5, True, seed=7)
        b = flat.render(0.5, False, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_narrowed_full_is_identity(self, synth):
        same = narrowed(synth, 1.0)
        assert class_separation(same) == class_separation(synth)

    def test_narrowed_validates(self, synth):
        with pytest.raises(ValueError):
            narrowed(synth, 1.5)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SynthParams(f0_hz=-1.0)
        with pytest.raises(ValueError):
            SynthParams(harmonic_decay=1.5)
        with pytest.raises(ValueError):
            SynthParams(n_harmonics=0)

    def test_presets_share_hum(self):
        assert QUEENRIGHT.f0_hz == QUEENLESS.f0_hz
        assert QUEENRIGHT.harmonic_decay == QUEENLESS.harmonic_decay
        assert QUEENLESS.piping_split_hz > 0 and QUEENRIGHT.piping_split_hz == 0
