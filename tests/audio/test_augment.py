"""Tests for waveform augmentation."""

import numpy as np
import pytest

from repro.audio.augment import Augmenter, add_noise, gain, polarity_invert, time_shift


@pytest.fixture
def clip(rng):
    t = np.arange(4410) / 22050.0
    return (0.5 * np.sin(2 * np.pi * 230.0 * t)).astype(np.float32)


class TestTransforms:
    def test_time_shift_preserves_content(self, clip):
        out = time_shift(clip, max_fraction=0.2, seed=3)
        assert out.shape == clip.shape
        assert np.sort(out).tolist() == pytest.approx(np.sort(clip).tolist())

    def test_time_shift_zero_fraction_identity(self, clip):
        np.testing.assert_array_equal(time_shift(clip, max_fraction=0.0, seed=0), clip)

    def test_add_noise_hits_target_snr(self, clip):
        out = add_noise(clip, snr_db=10.0, seed=0)
        noise = out.astype(np.float64) - clip
        snr = 10 * np.log10(np.mean(clip.astype(np.float64) ** 2) / np.mean(noise**2))
        assert snr == pytest.approx(10.0, abs=1.0)

    def test_add_noise_keeps_range(self, clip):
        out = add_noise(clip * 2.0, snr_db=0.0, seed=1)
        assert np.abs(out).max() <= 1.0

    def test_add_noise_silent_clip(self):
        out = add_noise(np.zeros(100, dtype=np.float32), seed=0)
        np.testing.assert_array_equal(out, 0.0)

    def test_gain_bounded(self, clip):
        for seed in range(5):
            out = gain(clip, max_db=12.0, seed=seed)
            assert np.abs(out).max() <= 1.0

    def test_polarity_spectrally_neutral(self, clip):
        out = polarity_invert(clip)
        np.testing.assert_allclose(np.abs(np.fft.rfft(out)), np.abs(np.fft.rfft(clip)), atol=1e-4)

    def test_all_preserve_shape_and_dtype(self, clip):
        for fn in (time_shift, add_noise, gain, polarity_invert):
            out = fn(clip, seed=0)
            assert out.shape == clip.shape
            assert out.dtype == np.float32

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            time_shift(np.zeros((2, 2)))


class TestAugmenter:
    def test_expand_factor(self, clip):
        aug = Augmenter(seed=0)
        clips, labels = aug.expand([clip, clip], [0, 1], factor=3)
        assert len(clips) == 6
        assert labels.tolist() == [0, 0, 0, 1, 1, 1]

    def test_deterministic(self, clip):
        a = Augmenter(seed=5).augment_clip(clip, index=0, copy=0)
        b = Augmenter(seed=5).augment_clip(clip, index=0, copy=0)
        np.testing.assert_array_equal(a, b)

    def test_copies_differ(self, clip):
        aug = Augmenter(seed=5)
        a = aug.augment_clip(clip, index=0, copy=0)
        b = aug.augment_clip(clip, index=0, copy=1)
        assert not np.array_equal(a, b)

    def test_factor_one_is_identity(self, clip):
        clips, labels = Augmenter(seed=0).expand([clip], [1], factor=1)
        assert len(clips) == 1
        np.testing.assert_array_equal(clips[0], clip)

    def test_validation(self, clip):
        with pytest.raises(ValueError):
            Augmenter(transforms=())
        with pytest.raises(ValueError):
            Augmenter().expand([clip], [0, 1], factor=2)
        with pytest.raises(ValueError):
            Augmenter().expand([clip], [0], factor=0)

    def test_augmentation_preserves_class_cue(self):
        """Training on an augmented corpus must not hurt accuracy much —
        transforms are label-preserving by construction."""
        from repro.audio.dataset import DatasetSpec, QueenDataset
        from repro.dsp.features import mel_statistics
        from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
        from repro.ml.scaler import StandardScaler
        from repro.ml.split import train_test_split
        from repro.ml.svm import SVC

        ds = QueenDataset(DatasetSpec.small(n_samples=60, clip_duration=1.0, seed=9))
        mel = MelSpectrogram(SpectrogramConfig())
        clips, labels = zip(*list(ds))
        aug_clips, aug_labels = Augmenter(seed=1).expand(list(clips), list(labels), factor=2)
        X = np.stack([mel_statistics(mel.db(c)) for c in aug_clips])
        Xtr, Xte, ytr, yte = train_test_split(X, aug_labels, test_fraction=0.3, seed=2)
        sc = StandardScaler()
        clf = SVC(C=20.0, gamma="scale", seed=2).fit(sc.fit_transform(Xtr), ytr)
        assert clf.score(sc.transform(Xte), yte) >= 0.7
