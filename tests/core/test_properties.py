"""Cross-cutting property tests on the core simulation model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.mixed import ClientGroup, simulate_mixed_fleet
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM
from repro.core.server import paper_server
from repro.core.simulate import occupied_slot_energy, simulate_fleet
from repro.core.sweep import sweep_clients

fleet_sizes = st.integers(min_value=1, max_value=1500)
parallels = st.integers(min_value=1, max_value=50)


class TestEnergyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(fleet_sizes, parallels)
    def test_total_energy_nonnegative_and_superadditive_parts(self, n, p):
        result = simulate_fleet(n, EDGE_CLOUD_SVM, max_parallel=p)
        assert result.edge_energy_j >= 0 and result.server_energy_j >= 0
        # Server energy at least covers the idle baseline of every server.
        assert result.server_energy_j >= result.n_servers * 44.6 * CYCLE_SECONDS - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(fleet_sizes)
    def test_total_energy_monotone_in_fleet(self, n):
        a = simulate_fleet(n, EDGE_CLOUD_SVM)
        b = simulate_fleet(n + 1, EDGE_CLOUD_SVM)
        assert b.total_energy_j > a.total_energy_j

    @settings(max_examples=30, deadline=None)
    @given(fleet_sizes, parallels)
    def test_servers_match_capacity_formula(self, n, p):
        result = simulate_fleet(n, EDGE_CLOUD_SVM, max_parallel=p)
        capacity = result.slots_per_server * p
        assert result.n_servers == -(-n // capacity)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=5))
    def test_losses_never_reduce_energy(self, occupancy, margin):
        """Any deterministic loss configuration only adds energy."""
        server = paper_server("svm", max_parallel=10)
        base = occupied_slot_energy(server, occupancy)
        lossy = occupied_slot_energy(
            server,
            occupancy,
            losses=LossConfig(saturation=SaturationPenalty(margin=margin)),
        )
        assert lossy >= base - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=10))
    def test_transfer_stretch_energy_monotone_in_occupancy_gap(self, occupancy):
        server = paper_server("svm", max_parallel=10)
        losses = LossConfig(transfer=TransferTimePenalty(1.5, cumulative=True))
        sizing = losses.transfer.sizing_extra_s(10)
        stretched = occupied_slot_energy(server, occupancy, sizing_extra_s=sizing, losses=losses)
        plain = occupied_slot_energy(server, occupancy)
        assert stretched > plain


class TestSweepConsistency:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(fleet_sizes, min_size=1, max_size=12, unique=True))
    def test_sweep_order_independent(self, sizes):
        """Sweep results depend only on the fleet size, not grid order."""
        arr = np.asarray(sorted(sizes))
        rev = arr[::-1].copy()
        fwd = sweep_clients(arr, EDGE_CLOUD_SVM)
        bwd = sweep_clients(rev, EDGE_CLOUD_SVM)
        np.testing.assert_allclose(fwd.server_energy_j, bwd.server_energy_j[::-1])

    @settings(max_examples=20, deadline=None)
    @given(fleet_sizes)
    def test_edge_scenario_linear_in_fleet(self, n):
        sweep = sweep_clients(np.array([n, 2 * n]), EDGE_SVM)
        assert sweep.edge_energy_j[1] == pytest.approx(2 * sweep.edge_energy_j[0], rel=1e-12)


class TestMixedFleetProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=1, max_value=6))
    def test_due_clients_conserved(self, count, k):
        """Every client uploads exactly once per its own period."""
        client = EDGE_CLOUD_SVM.client.with_period(CYCLE_SECONDS * k)
        result = simulate_mixed_fleet([ClientGroup("g", client, count)], EDGE_CLOUD_SVM.server)
        assert sum(result.due_per_cycle) == count * (result.hyperperiod / client.period)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=1, max_value=6))
    def test_phase_striping_balanced(self, count, k):
        client = EDGE_CLOUD_SVM.client.with_period(CYCLE_SECONDS * k)
        result = simulate_mixed_fleet([ClientGroup("g", client, count)], EDGE_CLOUD_SVM.server)
        due = np.asarray(result.due_per_cycle)
        assert due.max() - due.min() <= 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=300))
    def test_mixed_reduces_to_homogeneous(self, n):
        mixed = simulate_mixed_fleet(
            [ClientGroup("g", EDGE_CLOUD_SVM.client, n)], EDGE_CLOUD_SVM.server
        )
        homo = simulate_fleet(n, EDGE_CLOUD_SVM)
        assert mixed.server_energy_per_cycle == pytest.approx(homo.server_energy_j, rel=1e-12)
