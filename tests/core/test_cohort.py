"""Cohort aggregation: exactness against the per-client DES, plumbing units.

The headline property: on randomized small fleets — with and without
faults — the cohort-aggregated run equals the per-client run *ledger for
ledger with ``==``*, not within a tolerance.  That is the claim that makes
the fast path a validator rather than an approximation.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cohort import (
    Cohort,
    expand_accounts,
    group_cohorts,
    scale_account,
    weighted_total,
)
from repro.core.dessim import run_des_fleet
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM
from repro.core.simulate import simulate_fleet
from repro.energy.account import EnergyAccount
from repro.faults.config import FaultConfig
from repro.faults.desfaults import run_des_faulty_fleet
from repro.faults.spec import ClientCrash, LinkBlackout, LinkDegradation, ServerOutage


def assert_ledgers_equal(a: EnergyAccount, b: EnergyAccount) -> None:
    """Exact (float ``==``) equality of two ledgers, totals and durations."""
    assert a.breakdown() == b.breakdown()
    for category in a.breakdown():
        assert a.category_duration(category) == b.category_duration(category)


class TestPlumbing:
    def test_group_cohorts_by_exact_key(self):
        cohorts = group_cohorts({0: 1.5, 1: 2.5, 2: 1.5, 3: 2.5, 4: 9.0})
        assert [c.member_ids for c in cohorts] == [(0, 2), (1, 3), (4,)]
        assert [c.representative for c in cohorts] == [0, 1, 4]
        assert [c.multiplicity for c in cohorts] == [2, 2, 1]

    def test_group_cohorts_float_keys_not_fuzzy(self):
        cohorts = group_cohorts({0: 1.0, 1: 1.0 + 1e-12})
        assert len(cohorts) == 2

    def test_cohort_validates_member_ids(self):
        with pytest.raises(ValueError):
            Cohort(key=("k",), member_ids=())
        with pytest.raises(ValueError):
            Cohort(key=("k",), member_ids=(3, 1))
        with pytest.raises(ValueError):
            Cohort(key=("k",), member_ids=(1, 1))

    def test_scale_account(self):
        acc = EnergyAccount(owner="rep")
        acc.charge("sleep", 2.5, 100.0)
        acc.charge("send_audio", 1.25, 3.0)
        scaled = scale_account(acc, 4)
        assert scaled.breakdown() == {"sleep": 10.0, "send_audio": 5.0}
        assert scaled.category_duration("sleep") == 400.0
        with pytest.raises(ValueError):
            scale_account(acc, 0)

    def test_expand_accounts_shares_objects_and_validates(self):
        a, b = EnergyAccount(owner="a"), EnergyAccount(owner="b")
        cohorts = [
            Cohort(key=("x",), member_ids=(0, 2)),
            Cohort(key=("y",), member_ids=(1,)),
        ]
        expanded = expand_accounts([a, b], cohorts, 3)
        assert expanded == (a, b, a)
        assert expanded[0] is expanded[2]
        with pytest.raises(ValueError):
            expand_accounts([a], cohorts, 3)  # not parallel
        with pytest.raises(ValueError):
            expand_accounts([a, b], cohorts, 2)  # id 2 out of range
        with pytest.raises(ValueError):  # overlap
            expand_accounts(
                [a, b],
                [Cohort(key=("x",), member_ids=(0, 1)), Cohort(key=("y",), member_ids=(1,))],
                2,
            )
        with pytest.raises(ValueError):  # uncovered entity
            expand_accounts([a], [Cohort(key=("x",), member_ids=(0,))], 2)

    def test_weighted_total(self):
        a, b = EnergyAccount(owner="a"), EnergyAccount(owner="b")
        a.charge("x", 3.0)
        b.charge("x", 5.0)
        assert weighted_total([a, b], [10, 1]) == 10 * 3.0 + 5.0


class TestIdealPathExactness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=3))
    def test_cohort_equals_per_client_edge_cloud(self, n, n_cycles):
        per = run_des_fleet(n, EDGE_CLOUD_SVM, n_cycles=n_cycles)
        coh = run_des_fleet(n, EDGE_CLOUD_SVM, n_cycles=n_cycles, cohort=True)
        assert coh.n_clients == per.n_clients == n
        expanded = coh.expand_client_accounts()
        assert len(expanded) == n
        for a, b in zip(per.client_accounts, expanded):
            assert_ledgers_equal(a, b)
        for a, b in zip(per.server_accounts, coh.expand_server_accounts()):
            assert_ledgers_equal(a, b)
        # Summing the expansion in id order reproduces the per-client
        # aggregate bit-for-bit.
        assert sum(acc.total for acc in expanded) == per.edge_energy_j

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=64))
    def test_cohort_equals_per_client_edge_only(self, n):
        per = run_des_fleet(n, EDGE_SVM, n_cycles=2)
        coh = run_des_fleet(n, EDGE_SVM, n_cycles=2, cohort=True)
        # Every edge-only client has offset 0.0: one cohort carries all.
        assert len(coh.client_accounts) == 1
        assert coh.client_multiplicities == (n,)
        for a, b in zip(per.client_accounts, coh.expand_client_accounts()):
            assert_ledgers_equal(a, b)

    def test_cohort_collapses_to_slot_count(self):
        coh = run_des_fleet(700, EDGE_CLOUD_SVM, n_cycles=1, cohort=True)
        assert coh.n_clients == 700
        assert sum(coh.client_multiplicities) == 700
        # One cohort per distinct wake offset = per slot index in use.
        assert len(coh.client_accounts) <= 20
        assert len(coh.server_accounts) <= 2


HEAVY_FAULTS = FaultConfig(
    server_outage=ServerOutage(mtbf_s=1800.0, repair_s=40.0),
    link_blackout=LinkBlackout(mtbf_s=2400.0, repair_s=25.0),
    client_crash=ClientCrash(mtbf_s=3600.0, repair_s=60.0),
    link_degradation=LinkDegradation(mtbf_s=2000.0, repair_s=30.0, throughput_factor=0.5),
)
RARE_FAULTS = FaultConfig(server_outage=ServerOutage(mtbf_s=1e12, repair_s=1.0))


class TestFaultyPathExactness:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("n", [5, 37, 64])
    def test_cohort_equals_per_client_under_faults(self, seed, n):
        per = run_des_faulty_fleet(
            n, EDGE_CLOUD_SVM, faults=HEAVY_FAULTS, n_cycles=3, seed=seed
        )
        coh = run_des_faulty_fleet(
            n, EDGE_CLOUD_SVM, faults=HEAVY_FAULTS, n_cycles=3, seed=seed, cohort=True
        )
        assert coh.n_clients == n
        for a, b in zip(per.client_accounts, coh.expand_client_accounts()):
            assert_ledgers_equal(a, b)
        for a, b in zip(per.server_accounts, coh.server_accounts):
            assert_ledgers_equal(a, b)
        assert per.report == coh.report

    @pytest.mark.parametrize("seed", [0, 42])
    def test_quiet_fleet_collapses_under_rare_faults(self, seed):
        n = 64
        per = run_des_faulty_fleet(
            n, EDGE_CLOUD_SVM, faults=RARE_FAULTS, n_cycles=3, seed=seed
        )
        coh = run_des_faulty_fleet(
            n, EDGE_CLOUD_SVM, faults=RARE_FAULTS, n_cycles=3, seed=seed, cohort=True
        )
        # No fault window fires, so every client is statically quiet and
        # cohorts collapse to the slot structure.
        assert len(coh.client_accounts) < n / 4
        for a, b in zip(per.client_accounts, coh.expand_client_accounts()):
            assert_ledgers_equal(a, b)
        assert per.report == coh.report

    def test_des_fleet_delegates_cohort_flag(self):
        res = run_des_fleet(
            24, EDGE_CLOUD_SVM, n_cycles=2, faults=HEAVY_FAULTS, seed=3, cohort=True
        )
        assert res.n_clients == 24
        assert len(res.expand_client_accounts()) == 24


class TestAnalyticAgreementOnFastPath:
    @pytest.mark.parametrize("n", [37, 700, 5000])
    def test_cohort_des_matches_analytic(self, n):
        analytic = simulate_fleet(n, EDGE_CLOUD_SVM)
        des = run_des_fleet(n, EDGE_CLOUD_SVM, n_cycles=3, cohort=True)
        assert des.edge_energy_j / 3 == pytest.approx(analytic.edge_energy_j, rel=1e-9)
        assert des.server_energy_j / 3 == pytest.approx(analytic.server_energy_j, rel=1e-9)
        assert des.edge_energy_per_client_cycle == pytest.approx(
            analytic.edge_energy_j / n, rel=1e-9
        )

    def test_per_client_properties_use_true_fleet_size(self):
        des = run_des_fleet(700, EDGE_CLOUD_SVM, n_cycles=2, cohort=True)
        # Regression: with ~15 cohort ledgers for 700 clients, dividing by
        # len(client_accounts) would overstate per-client energy ~47x.
        assert des.n_clients == 700
        assert len(des.client_accounts) < 50
        per_cc = des.edge_energy_per_client_cycle
        analytic = simulate_fleet(700, EDGE_CLOUD_SVM)
        assert per_cc == pytest.approx(analytic.edge_energy_j / 700, rel=1e-9)
        assert math.isfinite(per_cc)
