"""Regression tests: n_clients=0 is well-defined on every path (PR 4).

An empty fleet used to raise ``n_clients must be >= 1`` on the DES and
fault paths; every entry point now returns empty/zero ledgers, per-client
means are 0.0 (never NaN or a ZeroDivisionError), and the full invariant
suite accepts the empty runs.
"""

import math

import numpy as np
import pytest

from repro.core.dessim import run_des_fleet
from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.core.sweep import sweep_clients
from repro.faults import FaultConfig, ServerOutage, run_des_faulty_fleet
from repro.faults.fleetsim import run_faulty_fleet


@pytest.fixture(scope="module")
def cloud():
    return make_scenario("edge+cloud", "svm", max_parallel=35)


@pytest.fixture(scope="module")
def edge():
    return make_scenario("edge", "svm")


@pytest.fixture(scope="module")
def faults():
    return FaultConfig(server_outage=ServerOutage(mtbf_s=1800.0, repair_s=300.0))


class TestAnalytic:
    @pytest.mark.parametrize("scen", ["cloud", "edge"])
    def test_simulate_fleet_zero(self, scen, cloud, edge, request):
        scenario = {"cloud": cloud, "edge": edge}[scen]
        r = simulate_fleet(0, scenario, validate=True)
        assert r.n_clients_initial == 0
        assert r.n_servers == 0
        assert r.total_energy_j == 0.0
        assert r.edge_energy_per_client == 0.0
        assert r.total_energy_per_active_client == 0.0

    def test_sweep_with_zero_entry(self, cloud):
        r = sweep_clients(np.array([0, 5, 0, 40]), cloud, validate=True)
        assert r.total_energy_j[0] == 0.0
        assert r.total_energy_j[2] == 0.0
        assert r.n_servers[0] == 0
        per_client = r.total_energy_per_client
        assert math.isfinite(per_client[0]) and per_client[0] == 0.0
        assert per_client[1] > 0.0

    def test_sweep_all_zero(self, cloud):
        r = sweep_clients(np.array([0]), cloud, validate=True)
        assert float(r.total_energy_j.sum()) == 0.0


class TestDes:
    @pytest.mark.parametrize("cohort", [False, True])
    def test_run_des_fleet_zero(self, cloud, cohort):
        r = run_des_fleet(0, cloud, n_cycles=2, cohort=cohort, validate=True)
        assert r.n_clients == 0
        assert r.client_accounts == ()
        assert r.server_accounts == ()
        assert r.total_energy_j == 0.0
        assert r.edge_energy_per_client_cycle == 0.0
        assert r.expand_client_accounts() == ()

    def test_run_des_fleet_zero_edge_only(self, edge):
        r = run_des_fleet(0, edge, validate=True)
        assert r.total_energy_j == 0.0

    def test_negative_still_rejected(self, cloud):
        with pytest.raises(ValueError, match=">= 0"):
            run_des_fleet(-1, cloud)


class TestFaultPaths:
    @pytest.mark.parametrize("cohort", [False, True])
    def test_des_faulty_zero(self, cloud, faults, cohort):
        r = run_des_faulty_fleet(
            0, cloud, faults=faults, n_cycles=2, seed=0, cohort=cohort, validate=True
        )
        assert r.n_clients == 0
        assert r.total_energy_j == 0.0
        assert r.availability == 1.0
        assert r.edge_energy_per_client_cycle == 0.0

    def test_analytic_faulty_zero(self, cloud, faults):
        r = run_faulty_fleet(0, cloud, faults=faults, n_cycles=2, seed=0, validate=True)
        assert r.n_clients == 0
        assert r.total_energy_j == 0.0
        assert r.availability == 1.0
        assert r.mean_total_per_client_cycle == 0.0

    def test_analytic_faulty_zero_edge_only(self, edge):
        r = run_faulty_fleet(0, edge, faults=FaultConfig.none(), n_cycles=2, validate=True)
        assert r.total_energy_j == 0.0

    def test_negative_still_rejected(self, cloud, faults):
        with pytest.raises(ValueError, match=">= 0"):
            run_des_faulty_fleet(-1, cloud, faults=faults)
        with pytest.raises(ValueError, match=">= 0"):
            run_faulty_fleet(-1, cloud, faults=faults)
