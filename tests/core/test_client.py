"""Tests for the client profile and the Figure 3 model."""

import numpy as np
import pytest

from repro.core.calibration import CYCLE_SECONDS, PAPER
from repro.core.client import ClientProfile, average_power_for_period, fig3_curve
from repro.core.routines import edge_scenario_tasks
from repro.util.units import MINUTE


class TestClientProfile:
    def make(self, period=CYCLE_SECONDS):
        return ClientProfile(
            name="test",
            active_tasks=edge_scenario_tasks("svm"),
            sleep_watts=PAPER.sleep_watts,
            period=period,
        )

    def test_cycle_energy_matches_table1(self):
        assert self.make().cycle_energy == pytest.approx(366.3, abs=0.2)

    def test_sleep_is_residual(self):
        c = self.make()
        assert c.sleep_duration == pytest.approx(178.5, abs=0.1)
        assert c.active_duration + c.sleep_duration == pytest.approx(CYCLE_SECONDS)

    def test_average_power(self):
        c = self.make()
        assert c.average_power == pytest.approx(c.cycle_energy / CYCLE_SECONDS)

    def test_longer_period_lowers_average_power(self):
        assert self.make(600.0).average_power < self.make(300.0).average_power

    def test_with_period(self):
        c = self.make().with_period(600.0)
        assert c.period == 600.0
        assert c.sleep_duration == pytest.approx(478.5, abs=0.1)

    def test_tasks_exceeding_period_rejected(self):
        with pytest.raises(ValueError):
            self.make(period=100.0)

    def test_surge_energy_added(self):
        base = self.make()
        surged = ClientProfile("s", base.active_tasks, base.sleep_watts, base.period, wake_surge_j=35.0)
        assert surged.cycle_energy == pytest.approx(base.cycle_energy + 35.0)


class TestFig3Model:
    def test_peak_at_5_minutes(self):
        assert average_power_for_period(5 * MINUTE) == pytest.approx(1.19, abs=0.01)

    def test_converges_to_sleep_power(self):
        p = average_power_for_period(24 * 60 * MINUTE)
        assert p == pytest.approx(PAPER.sleep_watts, abs=0.01)

    def test_monotone_decreasing(self):
        periods, powers = fig3_curve()
        assert list(periods) == [300, 600, 900, 1800, 3600, 7200]
        assert np.all(np.diff(powers) < 0)

    def test_bounded_below_by_sleep(self):
        _, powers = fig3_curve()
        assert all(p > PAPER.sleep_watts for p in powers)

    def test_period_shorter_than_routine_rejected(self):
        with pytest.raises(ValueError):
            average_power_for_period(60.0)
