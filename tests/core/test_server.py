"""Tests for the server profile and slot planning."""

import pytest

from repro.core.calibration import CYCLE_SECONDS, PAPER
from repro.core.server import ServerProfile, SlotPlan, paper_server
from repro.energy.power import TaskPower


class TestSlotGeometry:
    def test_svm_slot_count_is_18(self):
        srv = paper_server("svm")
        assert srv.slot_duration() == pytest.approx(16.6)
        assert srv.slots_per_cycle() == 18

    def test_cnn_slot_count_is_17(self):
        srv = paper_server("cnn")
        assert srv.slot_duration() == pytest.approx(17.5)
        assert srv.slots_per_cycle() == 17

    def test_capacity(self):
        assert paper_server("svm", max_parallel=10).capacity() == 180
        assert paper_server("svm", max_parallel=35).capacity() == 630  # Fig 7b full server

    def test_loss_b_stretch_shrinks_slots(self):
        srv = paper_server("svm", max_parallel=10)
        assert srv.slots_per_cycle(extra_transfer_s=15.0) == 9  # Fig 8b geometry

    def test_example_from_paper_text(self):
        """'Given a data transfer and a model execution's duration of 1
        minute, a server can allow 5 time slots' (in a 5-minute cycle)."""
        srv = ServerProfile(
            name="example",
            idle_watts=40.0,
            receive_watts=60.0,
            transfer_s=55.0,
            service=TaskPower("svc", 5.0, watts=60.0),
            guard_s=0.0,
        )
        assert srv.slots_per_cycle(CYCLE_SECONDS) == 5

    def test_slot_too_long_raises(self):
        srv = ServerProfile(
            name="x", idle_watts=1.0, receive_watts=2.0, transfer_s=400.0,
            service=TaskPower("s", 1.0, watts=1.0),
        )
        with pytest.raises(ValueError):
            srv.slots_per_cycle(CYCLE_SECONDS)


class TestSlotEnergy:
    def test_empty_slot_is_idle(self):
        srv = paper_server("svm")
        assert srv.slot_energy(0) == pytest.approx(srv.idle_watts * srv.slot_duration())

    def test_full_slot_svm_value(self):
        """Marginal energy of a full 10-client SVM slot: (68.8-44.6)*15 +
        10*(6.3 - 44.6*0.1) = 381.4 J."""
        srv = paper_server("svm", max_parallel=10)
        marginal = srv.slot_marginal_energy(10)
        assert marginal == pytest.approx(363.0 + 10 * 1.84, abs=0.5)

    def test_occupancy_monotone(self):
        srv = paper_server("svm", max_parallel=10)
        energies = [srv.slot_energy(k) for k in range(11)]
        assert all(b >= a for a, b in zip(energies, energies[1:]))

    def test_occupancy_bounds(self):
        srv = paper_server("svm", max_parallel=10)
        with pytest.raises(ValueError):
            srv.slot_energy(11)
        with pytest.raises(ValueError):
            srv.slot_energy(-1)

    def test_cycle_energy_idle_server(self):
        srv = paper_server("svm")
        assert srv.cycle_energy([]) == pytest.approx(44.6 * 300.0)

    def test_cycle_energy_full_server_reproduces_fig6(self):
        """Full server at 10/slot: ~112.5 J per client (paper: 116 J)."""
        srv = paper_server("svm", max_parallel=10)
        energy = srv.cycle_energy([10] * 18)
        per_client = energy / 180
        assert per_client == pytest.approx(PAPER.server_full_per_client_j, rel=0.05)

    def test_too_many_occupancies(self):
        srv = paper_server("svm", max_parallel=10)
        with pytest.raises(ValueError):
            srv.cycle_energy([1] * 19)


class TestPaperServer:
    def test_powers(self):
        srv = paper_server("svm")
        assert srv.idle_watts == pytest.approx(44.6)
        assert srv.receive_watts == pytest.approx(68.8)
        assert srv.service.energy == 6.3

    def test_cnn_service(self):
        srv = paper_server("cnn")
        assert srv.service.energy == 108.0
        assert srv.service.duration == 1.0

    def test_with_max_parallel(self):
        srv = paper_server("svm").with_max_parallel(35)
        assert srv.max_parallel == 35
        assert srv.idle_watts == pytest.approx(44.6)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            paper_server("gbdt")


class TestSlotPlan:
    def test_for_server(self):
        plan = SlotPlan.for_server(paper_server("svm", max_parallel=10))
        assert plan.slots_per_cycle == 18
        assert plan.capacity == 180


class TestSlotEnergyMonotonicity:
    @pytest.mark.parametrize("model", ["svm", "cnn"])
    @pytest.mark.parametrize("extra", [0.0, 1.5, 52.5])
    def test_non_decreasing_in_occupancy(self, model, extra):
        srv = paper_server(model, max_parallel=35)
        energies = [srv.slot_energy(k, extra) for k in range(36)]
        for lo, hi in zip(energies, energies[1:]):
            assert hi >= lo

    @pytest.mark.parametrize("model", ["svm", "cnn"])
    def test_never_below_idle_baseline(self, model):
        srv = paper_server(model, max_parallel=35)
        for extra in (0.0, 1.5, 52.5):
            baseline = srv.idle_watts * srv.slot_duration(extra)
            for k in range(36):
                assert srv.slot_energy(k, extra) >= baseline
            assert srv.slot_energy(0, extra) == pytest.approx(baseline)

    def test_marginal_energy_of_empty_slot_is_zero(self):
        srv = paper_server("svm", max_parallel=35)
        assert srv.slot_marginal_energy(0) == pytest.approx(0.0)
        assert srv.slot_marginal_energy(1) > 0.0
