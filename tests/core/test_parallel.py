"""The chunked parallel runner: parity, ordering, fallback, seed stability."""

import pytest

from repro.core.parallel import auto_chunksize, parallel_map, seed_table
from repro.util.rng import derive_seed


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_workers_one_is_serial(self):
        assert parallel_map(square, range(6), workers=1) == [0, 1, 4, 9, 16, 25]

    def test_parallel_matches_serial_and_preserves_order(self):
        items = list(range(40))
        serial = parallel_map(square, items)
        for workers in (2, 4):
            assert parallel_map(square, items, workers=workers) == serial

    def test_explicit_chunksize(self):
        assert parallel_map(square, range(10), workers=2, chunksize=3) == [
            x * x for x in range(10)
        ]

    def test_exceptions_propagate_serial(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, [1, 2])

    def test_exceptions_propagate_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, [1, 2, 3, 4], workers=2)

    def test_empty_and_singleton(self):
        assert parallel_map(square, [], workers=4) == []
        assert parallel_map(square, [3], workers=4) == [9]


class TestSeedStability:
    def test_seed_table_matches_derive_seed(self):
        labels = ["a", "b", ("c", 3)]
        assert seed_table(7, labels) == [derive_seed(7, lab) for lab in labels]

    def test_seed_table_independent_of_order(self):
        # Each entry depends only on (base, label) — permuting the work
        # list permutes the seeds identically, so chunking cannot matter.
        fwd = dict(zip("abc", seed_table(1, list("abc"))))
        rev = dict(zip("cba", seed_table(1, list("cba"))))
        assert fwd == rev


class TestAutoChunksize:
    def test_amortizes_ipc(self):
        assert auto_chunksize(100, 4) == 6
        assert auto_chunksize(3, 4) == 1
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(100, 0) == 1


class TestSupervisedEngine:
    def test_supervise_kwarg_matches_plain_pool(self):
        items = list(range(25))
        plain = parallel_map(square, items, workers=2)
        assert parallel_map(square, items, workers=2, supervise=True) == plain
        assert parallel_map(square, items, workers=2, supervise=True, chunksize=4) == plain

    def test_checkpoint_kwarg_implies_supervision(self, tmp_path):
        from repro.resilience.checkpoint import RunCheckpoint

        rc = RunCheckpoint(tmp_path / "ck.json", run_key="k")
        items = list(range(10))
        got = parallel_map(square, items, chunksize=2, checkpoint=rc.stage("s"))
        assert got == [x * x for x in items]
        assert rc.completed("s")  # chunks were recorded durably

    def test_supervised_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, [1, 2, 3, 4], workers=2, supervise=True)


class TestKeyboardInterrupt:
    """Ctrl-C must terminate the pool cleanly: no orphaned workers, and a
    structured InterruptedRun instead of a raw KeyboardInterrupt."""

    def test_sigint_kills_workers_and_raises_structured(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        pid_dir = tmp_path / "pids"
        pid_dir.mkdir()
        script = tmp_path / "victim.py"
        script.write_text(
            f"""
import os, sys, time
sys.path.insert(0, {src!r})
from repro.core.parallel import parallel_map
from repro.resilience.errors import InterruptedRun

PID_DIR = {str(pid_dir)!r}

def slow(x):
    open(os.path.join(PID_DIR, str(os.getpid())), "w").close()
    time.sleep(60)
    return x

if __name__ == "__main__":
    print("READY", flush=True)
    try:
        parallel_map(slow, list(range(8)), workers=2)
    except InterruptedRun as exc:
        print(f"INTERRUPTED {{exc.completed}}/{{exc.total}}", flush=True)
        raise SystemExit(130)
    raise SystemExit(1)
"""
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # Wait until both workers are inside slow() (pids on disk).
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(list(pid_dir.iterdir())) >= 2:
                    break
                time.sleep(0.05)
            worker_pids = [int(p.name) for p in pid_dir.iterdir()]
            assert worker_pids, "workers never started"
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 130, f"stdout={out!r} stderr={err!r}"
        assert "INTERRUPTED 0/8" in out
        # No orphans: every worker that wrote a pid must be gone.
        time.sleep(0.5)
        for pid in worker_pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
