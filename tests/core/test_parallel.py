"""The chunked parallel runner: parity, ordering, fallback, seed stability."""

import pytest

from repro.core.parallel import auto_chunksize, parallel_map, seed_table
from repro.util.rng import derive_seed


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_workers_one_is_serial(self):
        assert parallel_map(square, range(6), workers=1) == [0, 1, 4, 9, 16, 25]

    def test_parallel_matches_serial_and_preserves_order(self):
        items = list(range(40))
        serial = parallel_map(square, items)
        for workers in (2, 4):
            assert parallel_map(square, items, workers=workers) == serial

    def test_explicit_chunksize(self):
        assert parallel_map(square, range(10), workers=2, chunksize=3) == [
            x * x for x in range(10)
        ]

    def test_exceptions_propagate_serial(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, [1, 2])

    def test_exceptions_propagate_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, [1, 2, 3, 4], workers=2)

    def test_empty_and_singleton(self):
        assert parallel_map(square, [], workers=4) == []
        assert parallel_map(square, [3], workers=4) == [9]


class TestSeedStability:
    def test_seed_table_matches_derive_seed(self):
        labels = ["a", "b", ("c", 3)]
        assert seed_table(7, labels) == [derive_seed(7, lab) for lab in labels]

    def test_seed_table_independent_of_order(self):
        # Each entry depends only on (base, label) — permuting the work
        # list permutes the seeds identically, so chunking cannot matter.
        fwd = dict(zip("abc", seed_table(1, list("abc"))))
        rev = dict(zip("cba", seed_table(1, list("cba"))))
        assert fwd == rev


class TestAutoChunksize:
    def test_amortizes_ipc(self):
        assert auto_chunksize(100, 4) == 6
        assert auto_chunksize(3, 4) == 1
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(100, 0) == 1
