"""Tests for the cycle-level fleet simulator."""

import pytest

from repro.core.calibration import PAPER
from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM
from repro.core.simulate import occupied_slot_energy, server_cycle_energy, simulate_fleet


class TestOccupiedSlotEnergy:
    def test_matches_server_profile(self):
        srv = EDGE_CLOUD_SVM.server
        for k in (1, 5, 10):
            assert occupied_slot_energy(srv, k) == pytest.approx(srv.slot_energy(k))

    def test_saturation_penalty_slot_base(self):
        srv = EDGE_CLOUD_SVM.server
        losses = LossConfig(saturation=SaturationPenalty(margin=5, rate=0.1))
        plain = occupied_slot_energy(srv, 10)
        penalized = occupied_slot_energy(srv, 10, losses=losses)
        assert penalized == pytest.approx(1.5 * plain)

    def test_saturation_penalty_active_base_smaller(self):
        srv = EDGE_CLOUD_SVM.server
        slot_pen = occupied_slot_energy(
            srv, 10, losses=LossConfig(saturation=SaturationPenalty(base="slot"))
        )
        active_pen = occupied_slot_energy(
            srv, 10, losses=LossConfig(saturation=SaturationPenalty(base="active"))
        )
        assert active_pen < slot_pen

    def test_transfer_stretch_raises_energy(self):
        srv = EDGE_CLOUD_SVM.server
        losses = LossConfig(transfer=TransferTimePenalty(1.5, cumulative=True))
        sizing = losses.transfer.sizing_extra_s(srv.max_parallel)
        stretched = occupied_slot_energy(srv, 10, sizing_extra_s=sizing, losses=losses)
        assert stretched > occupied_slot_energy(srv, 10)

    def test_occupancy_bounds(self):
        with pytest.raises(ValueError):
            occupied_slot_energy(EDGE_CLOUD_SVM.server, 0)


class TestServerCycleEnergy:
    def test_idle_server(self):
        srv = EDGE_CLOUD_SVM.server
        assert server_cycle_energy(srv, []) == pytest.approx(44.6 * 300)

    def test_additivity_over_slots(self):
        srv = EDGE_CLOUD_SVM.server
        one = server_cycle_energy(srv, [10]) - server_cycle_energy(srv, [])
        two = server_cycle_energy(srv, [10, 10]) - server_cycle_energy(srv, [])
        assert two == pytest.approx(2 * one)


class TestSimulateFleet:
    def test_edge_only(self):
        result = simulate_fleet(100, EDGE_SVM)
        assert result.n_servers == 0
        assert result.server_energy_j == 0.0
        assert result.total_energy_per_client == pytest.approx(366.3, abs=0.2)

    def test_edge_cloud_flat_edge_cost(self):
        """Figure 6: edge J/client is fleet-size independent (322 J)."""
        for n in (10, 100, 400):
            result = simulate_fleet(n, EDGE_CLOUD_SVM)
            assert result.edge_energy_per_client == pytest.approx(322.0, abs=0.2)

    def test_full_server_best_cost(self):
        """Figure 6: best total per client ~438 J at one full server."""
        result = simulate_fleet(180, EDGE_CLOUD_SVM, max_parallel=10)
        assert result.n_servers == 1
        assert result.server_energy_per_client == pytest.approx(
            PAPER.server_full_per_client_j, rel=0.05
        )
        assert result.total_energy_per_client == pytest.approx(
            PAPER.best_total_per_client_j, rel=0.03
        )

    def test_server_count_steps(self):
        assert simulate_fleet(180, EDGE_CLOUD_SVM, max_parallel=10).n_servers == 1
        assert simulate_fleet(181, EDGE_CLOUD_SVM, max_parallel=10).n_servers == 2

    def test_max_parallel_override(self):
        result = simulate_fleet(630, EDGE_CLOUD_SVM, max_parallel=35)
        assert result.n_servers == 1
        assert result.max_parallel == 35

    def test_client_loss_reduces_active(self):
        losses = LossConfig(client_loss=ClientLoss(mean_fraction=0.10, std=2.0))
        result = simulate_fleet(300, EDGE_CLOUD_SVM, losses=losses, seed=1)
        assert result.n_clients_active < 300
        assert result.n_clients_lost == 300 - result.n_clients_active
        # Edge energy charged only for reporting clients.
        assert result.edge_energy_j == pytest.approx(result.n_clients_active * 322.0, rel=0.001)

    def test_loss_seed_reproducible(self):
        losses = LossConfig(client_loss=ClientLoss())
        a = simulate_fleet(300, EDGE_CLOUD_SVM, losses=losses, seed=9)
        b = simulate_fleet(300, EDGE_CLOUD_SVM, losses=losses, seed=9)
        assert a.n_clients_active == b.n_clients_active

    def test_zero_clients(self):
        result = simulate_fleet(0, EDGE_CLOUD_SVM)
        assert result.total_energy_j == 0.0
        assert result.total_energy_per_client == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            simulate_fleet(-1, EDGE_SVM)
