"""Tests for the allocator and filling policies, including invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import (
    Allocator,
    BalancedPolicy,
    FirstFitPolicy,
    RoundRobinPolicy,
)
from repro.core.losses import LossConfig, TransferTimePenalty
from repro.core.server import SlotPlan, paper_server


def plan(slots=18, parallel=10):
    return SlotPlan(slot_duration=16.6, slots_per_cycle=slots, max_parallel=parallel)


class TestFirstFit:
    def test_fills_slot_by_slot(self):
        alloc = FirstFitPolicy().allocate(range(25), plan())
        srv = alloc.servers[0]
        assert srv.occupancies == [10, 10, 5]

    def test_opens_new_server_at_capacity(self):
        alloc = FirstFitPolicy().allocate(range(181), plan())
        assert alloc.n_servers == 2
        assert alloc.servers[0].n_clients == 180
        assert alloc.servers[1].n_clients == 1

    def test_zero_clients(self):
        alloc = FirstFitPolicy().allocate([], plan())
        assert alloc.n_servers == 0 and alloc.n_clients == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=800))
    def test_invariants(self, n):
        alloc = FirstFitPolicy().allocate(range(n), plan())
        alloc.validate()
        assert alloc.n_clients == n
        expected_servers = math.ceil(n / 180) if n else 0
        assert alloc.n_servers == expected_servers


class TestRoundRobin:
    def test_spreads_within_server(self):
        alloc = RoundRobinPolicy().allocate(range(36), plan())
        occ = alloc.servers[0].occupancies
        assert max(occ) - min(occ) <= 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_invariants(self, n):
        alloc = RoundRobinPolicy().allocate(range(n), plan())
        alloc.validate()
        assert alloc.n_clients == n
        assert alloc.n_servers == math.ceil(n / 180)


class TestBalanced:
    def test_global_flatness(self):
        alloc = BalancedPolicy().allocate(range(200), plan())
        occ = [k for srv in alloc.servers for k in srv.occupancies]
        assert max(occ) - min(occ) <= 1

    def test_minimal_servers(self):
        alloc = BalancedPolicy().allocate(range(181), plan())
        assert alloc.n_servers == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_invariants(self, n):
        alloc = BalancedPolicy().allocate(range(n), plan())
        alloc.validate()
        assert alloc.n_clients == n


class TestAllocator:
    def test_default_first_fit(self):
        allocator = Allocator(paper_server("svm", max_parallel=10))
        alloc = allocator.allocate(25)
        assert alloc.servers[0].occupancies == [10, 10, 5]

    def test_loss_b_changes_plan(self):
        losses = LossConfig(transfer=TransferTimePenalty(1.5, cumulative=True))
        allocator = Allocator(paper_server("svm", max_parallel=10), losses=losses)
        assert allocator.plan.slots_per_cycle == 9
        assert allocator.sizing_extra_s == 15.0

    def test_servers_required(self):
        allocator = Allocator(paper_server("svm", max_parallel=10))
        assert allocator.servers_required(0) == 0
        assert allocator.servers_required(180) == 1
        assert allocator.servers_required(181) == 2

    def test_negative_clients(self):
        allocator = Allocator(paper_server("svm"))
        with pytest.raises(ValueError):
            allocator.allocate(-1)

    def test_validation_catches_duplicates(self):
        from repro.core.allocator import Allocation, ServerAssignment

        bad = Allocation(
            (ServerAssignment(0, ((1, 1),)),),
            plan(),
        )
        with pytest.raises(ValueError, match="twice"):
            bad.validate()

    def test_validation_catches_overfull_slot(self):
        from repro.core.allocator import Allocation, ServerAssignment

        bad = Allocation(
            (ServerAssignment(0, (tuple(range(11)),)),),
            plan(parallel=10),
        )
        with pytest.raises(ValueError, match="max_parallel"):
            bad.validate()
