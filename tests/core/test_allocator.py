"""Tests for the allocator and filling policies, including invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import (
    Allocator,
    BalancedPolicy,
    FirstFitPolicy,
    RoundRobinPolicy,
)
from repro.core.losses import LossConfig, TransferTimePenalty
from repro.core.server import SlotPlan, paper_server


def plan(slots=18, parallel=10):
    return SlotPlan(slot_duration=16.6, slots_per_cycle=slots, max_parallel=parallel)


class TestFirstFit:
    def test_fills_slot_by_slot(self):
        alloc = FirstFitPolicy().allocate(range(25), plan())
        srv = alloc.servers[0]
        assert srv.occupancies == [10, 10, 5]

    def test_opens_new_server_at_capacity(self):
        alloc = FirstFitPolicy().allocate(range(181), plan())
        assert alloc.n_servers == 2
        assert alloc.servers[0].n_clients == 180
        assert alloc.servers[1].n_clients == 1

    def test_zero_clients(self):
        alloc = FirstFitPolicy().allocate([], plan())
        assert alloc.n_servers == 0 and alloc.n_clients == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=800))
    def test_invariants(self, n):
        alloc = FirstFitPolicy().allocate(range(n), plan())
        alloc.validate()
        assert alloc.n_clients == n
        expected_servers = math.ceil(n / 180) if n else 0
        assert alloc.n_servers == expected_servers


class TestRoundRobin:
    def test_spreads_within_server(self):
        alloc = RoundRobinPolicy().allocate(range(36), plan())
        occ = alloc.servers[0].occupancies
        assert max(occ) - min(occ) <= 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_invariants(self, n):
        alloc = RoundRobinPolicy().allocate(range(n), plan())
        alloc.validate()
        assert alloc.n_clients == n
        assert alloc.n_servers == math.ceil(n / 180)


class TestBalanced:
    def test_global_flatness(self):
        alloc = BalancedPolicy().allocate(range(200), plan())
        occ = [k for srv in alloc.servers for k in srv.occupancies]
        assert max(occ) - min(occ) <= 1

    def test_minimal_servers(self):
        alloc = BalancedPolicy().allocate(range(181), plan())
        assert alloc.n_servers == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_invariants(self, n):
        alloc = BalancedPolicy().allocate(range(n), plan())
        alloc.validate()
        assert alloc.n_clients == n


class TestAllocator:
    def test_default_first_fit(self):
        allocator = Allocator(paper_server("svm", max_parallel=10))
        alloc = allocator.allocate(25)
        assert alloc.servers[0].occupancies == [10, 10, 5]

    def test_loss_b_changes_plan(self):
        losses = LossConfig(transfer=TransferTimePenalty(1.5, cumulative=True))
        allocator = Allocator(paper_server("svm", max_parallel=10), losses=losses)
        assert allocator.plan.slots_per_cycle == 9
        assert allocator.sizing_extra_s == 15.0

    def test_servers_required(self):
        allocator = Allocator(paper_server("svm", max_parallel=10))
        assert allocator.servers_required(0) == 0
        assert allocator.servers_required(180) == 1
        assert allocator.servers_required(181) == 2

    def test_negative_clients(self):
        allocator = Allocator(paper_server("svm"))
        with pytest.raises(ValueError):
            allocator.allocate(-1)

    def test_validation_catches_duplicates(self):
        from repro.core.allocator import Allocation, ServerAssignment

        bad = Allocation(
            (ServerAssignment(0, ((1, 1),)),),
            plan(),
        )
        with pytest.raises(ValueError, match="twice"):
            bad.validate()

    def test_validation_catches_overfull_slot(self):
        from repro.core.allocator import Allocation, ServerAssignment

        bad = Allocation(
            (ServerAssignment(0, (tuple(range(11)),)),),
            plan(parallel=10),
        )
        with pytest.raises(ValueError, match="max_parallel"):
            bad.validate()


class TestValidateCrossServer:
    def test_duplicate_across_servers_rejected(self):
        from repro.core.allocator import Allocation, ServerAssignment

        # Client 7 appears on two different servers — exactly the corruption
        # a buggy failover repack would produce.
        bad = Allocation(
            (
                ServerAssignment(0, ((1, 7),)),
                ServerAssignment(1, ((7, 9),)),
            ),
            plan(),
        )
        with pytest.raises(ValueError, match="client 7 allocated twice"):
            bad.validate()

    def test_disjoint_servers_pass(self):
        from repro.core.allocator import Allocation, ServerAssignment

        good = Allocation(
            (
                ServerAssignment(0, ((1, 2),)),
                ServerAssignment(1, ((3, 4),)),
            ),
            plan(),
        )
        good.validate()  # must not raise


class TestValidateDuplicateServerIndex:
    def test_duplicate_server_index_rejected(self):
        from repro.core.allocator import Allocation, ServerAssignment

        # Disjoint clients and correct occupancy sums, but two assignments
        # share server_index 0 — every by-index consumer would silently
        # collapse them (repack_failed_servers' by_index dict drops one
        # assignment's clients from the orphan list).
        bad = Allocation(
            (
                ServerAssignment(0, ((1, 2),)),
                ServerAssignment(0, ((3, 4),)),
            ),
            plan(),
        )
        with pytest.raises(ValueError, match="server index 0 assigned twice"):
            bad.validate()

    def test_repack_would_have_dropped_clients_silently(self):
        from repro.core.allocator import Allocation, ServerAssignment, repack_failed_servers

        # The corruption the new check guards: without validate(), repacking
        # the duplicated index orphans only ONE of the two assignments —
        # clients 1 and 2 vanish from both the new allocation and the
        # unplaced list.  validate() now refuses the input up front.
        bad = Allocation(
            (
                ServerAssignment(0, ((1, 2),)),
                ServerAssignment(0, ((3, 4),)),
                ServerAssignment(1, ((5,),)),
            ),
            plan(),
        )
        repacked, unplaced = repack_failed_servers(bad, (0,))
        lost = {1, 2, 3, 4} - set(repacked.client_ids) - set(unplaced)
        assert lost  # documents the silent loss mode on unvalidated input
        with pytest.raises(ValueError, match="assigned twice"):
            bad.validate()

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=500))
    def test_policy_outputs_have_unique_indices(self, n):
        for policy in (FirstFitPolicy(), RoundRobinPolicy(), BalancedPolicy()):
            alloc = policy.allocate(range(n), plan())
            indices = [s.server_index for s in alloc.servers]
            assert len(indices) == len(set(indices))


class TestRepackFailedServer:
    def test_orphans_fill_survivor_spare_capacity(self):
        from repro.core.allocator import Allocation, ServerAssignment, repack_failed_server

        alloc = Allocation(
            (
                ServerAssignment(0, ((0, 1),)),
                ServerAssignment(1, ((2, 3),)),
            ),
            plan(),
        )
        repacked, unplaced = repack_failed_server(alloc, 1)
        assert tuple(unplaced) == ()
        assert repacked.n_servers == 1
        assert repacked.n_clients == 4
        assert set(repacked.client_ids) == {0, 1, 2, 3}

    def test_unplaced_returned_when_survivors_full(self):
        from repro.core.allocator import repack_failed_server

        alloc = FirstFitPolicy().allocate(range(190), plan())
        orphans = [cid for slot in alloc.servers[1].slots for cid in slot]
        repacked, unplaced = repack_failed_server(alloc, 1)
        assert sorted(unplaced) == sorted(orphans)
        assert repacked.n_clients == 180

    def test_repack_with_room_places_everyone(self):
        from repro.core.allocator import repack_failed_server

        # 30 clients over two half-empty servers via round-robin spreading.
        alloc = RoundRobinPolicy().allocate(range(200), plan())
        failed = alloc.servers[0].server_index
        orphans = alloc.servers[0].n_clients
        survivors_before = alloc.n_clients - orphans
        repacked, unplaced = repack_failed_server(alloc, failed)
        assert repacked.n_clients + len(unplaced) == alloc.n_clients
        assert repacked.n_clients >= survivors_before
        repacked.validate()  # never duplicates or overfills
        assert all(s.server_index != failed for s in repacked.servers)

    def test_survivor_assignments_untouched(self):
        from repro.core.allocator import repack_failed_server

        alloc = FirstFitPolicy().allocate(range(190), plan())
        before = {
            s.server_index: tuple(tuple(slot) for slot in s.slots) for s in alloc.servers
        }
        repacked, _ = repack_failed_server(alloc, 1)
        for srv in repacked.servers:
            kept = before[srv.server_index]
            for old_slot, new_slot in zip(kept, srv.slots):
                # Existing clients keep their slot prefix (wake offsets valid).
                assert tuple(new_slot)[: len(old_slot)] == old_slot

    def test_unknown_server_rejected(self):
        from repro.core.allocator import repack_failed_server

        alloc = FirstFitPolicy().allocate(range(20), plan())
        with pytest.raises(ValueError, match="no server 5"):
            repack_failed_server(alloc, 5)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=600))
    def test_repack_invariants(self, n):
        from repro.core.allocator import repack_failed_server

        alloc = BalancedPolicy().allocate(range(n), plan())
        if alloc.n_servers == 0:
            return
        failed = alloc.servers[-1].server_index
        repacked, unplaced = repack_failed_server(alloc, failed)
        repacked.validate()
        placed_ids = set(repacked.client_ids)
        assert placed_ids.isdisjoint(unplaced)
        assert placed_ids | set(unplaced) == set(range(n))


class TestRepackFailedServers:
    def test_orphans_never_land_on_another_failed_server(self):
        from repro.core.allocator import repack_failed_servers

        # Three servers, the first two down: every orphan must end up on
        # server 2 or be unplaced — never on the other downed server.
        alloc = FirstFitPolicy().allocate(range(400), plan())
        assert alloc.n_servers == 3
        repacked, unplaced = repack_failed_servers(alloc, (0, 1))
        repacked.validate()
        assert {s.server_index for s in repacked.servers} == {2}
        placed_ids = set(repacked.client_ids)
        assert placed_ids.isdisjoint(unplaced)
        assert placed_ids | set(unplaced) == set(range(400))

    def test_single_failure_matches_shorthand(self):
        from repro.core.allocator import repack_failed_server, repack_failed_servers

        alloc = FirstFitPolicy().allocate(range(190), plan())
        a1, u1 = repack_failed_server(alloc, 1)
        a2, u2 = repack_failed_servers(alloc, (1,))
        assert u1 == u2
        assert [(s.server_index, s.slots) for s in a1.servers] == [
            (s.server_index, s.slots) for s in a2.servers
        ]

    def test_all_servers_failed_everyone_unplaced(self):
        from repro.core.allocator import repack_failed_servers

        alloc = FirstFitPolicy().allocate(range(100), plan())
        indices = tuple(s.server_index for s in alloc.servers)
        repacked, unplaced = repack_failed_servers(alloc, indices)
        assert repacked.n_servers == 0
        assert sorted(unplaced) == list(range(100))

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=600),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_multi_repack_invariants(self, n, k):
        from repro.core.allocator import repack_failed_servers

        alloc = BalancedPolicy().allocate(range(n), plan())
        if alloc.n_servers == 0:
            return
        failed = [s.server_index for s in alloc.servers[: min(k, alloc.n_servers)]]
        repacked, unplaced = repack_failed_servers(alloc, failed)
        repacked.validate()
        placed_ids = set(repacked.client_ids)
        assert placed_ids.isdisjoint(unplaced)
        assert placed_ids | set(unplaced) == set(range(n))
        assert {s.server_index for s in repacked.servers}.isdisjoint(failed)


class TestPolicyAwareRepack:
    """``repack_failed_servers(..., policy=...)`` steers orphan fill order."""

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=600))
    def test_none_policy_matches_first_fit_policy_byte_exact(self, n):
        from repro.core.allocator import repack_failed_server

        alloc = RoundRobinPolicy().allocate(range(n), plan())
        failed = alloc.servers[0].server_index
        legacy = repack_failed_server(alloc, failed)
        steered = repack_failed_server(alloc, failed, policy=FirstFitPolicy())
        assert legacy[1] == steered[1]
        assert [(s.server_index, s.slots) for s in legacy[0].servers] == [
            (s.server_index, s.slots) for s in steered[0].servers
        ]

    def test_best_fit_tops_up_the_fullest_slots_first(self):
        from repro.core.allocator import (
            Allocation,
            BestFitPolicy,
            ServerAssignment,
            repack_failed_server,
        )

        p = plan(slots=3, parallel=4)
        alloc = Allocation(
            (
                ServerAssignment(0, ((0, 1, 2), (3,))),  # occupancies 3, 1
                ServerAssignment(1, ((10, 11),)),  # the one to fail
            ),
            p,
        )
        repacked, unplaced = repack_failed_server(alloc, 1, policy=BestFitPolicy())
        assert unplaced == ()
        srv = repacked.servers[0]
        # fullest first: slot 0 (occ 3) takes one orphan, then slot 1 (occ 1+1).
        assert srv.slots[0] == (0, 1, 2, 10)
        assert srv.slots[1] == (3, 11)

    def test_worst_fit_fills_the_emptiest_slots_first(self):
        from repro.core.allocator import (
            Allocation,
            ServerAssignment,
            WorstFitPolicy,
            repack_failed_server,
        )

        p = plan(slots=3, parallel=4)
        alloc = Allocation(
            (
                ServerAssignment(0, ((0, 1, 2), (3,))),
                ServerAssignment(1, ((10, 11),)),
            ),
            p,
        )
        repacked, unplaced = repack_failed_server(alloc, 1, policy=WorstFitPolicy())
        assert unplaced == ()
        srv = repacked.servers[0]
        # emptiest first: a brand-new slot (occ 0) wins over slot 1 (occ 1);
        # the second orphan then ties that fresh slot with slot 1, and the
        # lower slot ordinal breaks the tie.
        assert srv.slots[0] == (0, 1, 2)
        assert srv.slots[1] == (3, 11)
        assert srv.slots[2] == (10,)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=600),
        kind=st.sampled_from(
            ("first-fit", "best-fit", "worst-fit", "solar-budget", "swarm-scored")
        ),
    )
    def test_policy_repack_preserves_invariants(self, n, kind):
        from repro.core.allocator import repack_failed_servers, resolve_policy

        policy = resolve_policy(kind)
        alloc = policy.allocate(range(n), plan())
        failed = [alloc.servers[0].server_index]
        repacked, unplaced = repack_failed_servers(alloc, failed, policy=policy)
        repacked.validate()
        placed_ids = set(repacked.client_ids)
        assert placed_ids.isdisjoint(unplaced)
        assert placed_ids | set(unplaced) == set(range(n))
