"""Tests for task sequences."""

import pytest

from repro.core.tasks import TaskSequence
from repro.energy.power import TaskPower


def seq():
    return TaskSequence(
        "demo",
        [
            TaskPower("a", 10.0, measured_energy=20.0),
            TaskPower("b", 5.0, measured_energy=15.0),
        ],
    )


class TestTaskSequence:
    def test_totals(self):
        s = seq()
        assert s.total_duration == 15.0
        assert s.total_energy == 35.0
        assert len(s) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskSequence("x", [])

    def test_get(self):
        assert seq().get("a").energy == 20.0
        with pytest.raises(KeyError, match="demo"):
            seq().get("zzz")

    def test_without(self):
        s = seq().without("a")
        assert [t.name for t in s] == ["b"]

    def test_replace_task(self):
        s = seq().replace_task("b", TaskPower("b", 5.0, measured_energy=99.0))
        assert s.get("b").energy == 99.0

    def test_replace_unknown(self):
        with pytest.raises(KeyError):
            seq().replace_task("zzz", TaskPower("zzz", 1.0, watts=1.0))

    def test_immutability(self):
        s = seq()
        with pytest.raises(Exception):
            s.tasks = ()

    def test_render_contains_rows_and_total(self):
        out = seq().render()
        assert "demo" in out and "Total" in out
        assert "20.0" in out and "35.0" in out
