"""Tests for the loss models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.util.rng import make_rng


class TestSaturationPenalty:
    def test_no_penalty_below_threshold(self):
        pen = SaturationPenalty(margin=5, rate=0.1)
        assert pen.multiplier(5, 10) == 1.0

    def test_paper_example_full_slot(self):
        """10/slot, margin 5: a full slot has 5 clients over -> x1.5."""
        pen = SaturationPenalty(margin=5, rate=0.1)
        assert pen.multiplier(10, 10) == pytest.approx(1.5)

    def test_linear_in_overage(self):
        pen = SaturationPenalty(margin=5, rate=0.1)
        assert pen.multiplier(7, 10) == pytest.approx(1.2)

    def test_margin_larger_than_capacity(self):
        pen = SaturationPenalty(margin=20, rate=0.1)
        assert pen.multiplier(3, 10) == pytest.approx(1.3)  # threshold clamps to 0

    def test_occupancy_bounds(self):
        pen = SaturationPenalty()
        with pytest.raises(ValueError):
            pen.multiplier(11, 10)

    def test_base_validation(self):
        with pytest.raises(ValueError):
            SaturationPenalty(base="idle")
        SaturationPenalty(base="active")  # valid


class TestTransferTimePenalty:
    def test_cumulative_sizing(self):
        pen = TransferTimePenalty(extra_s_per_client=1.5, cumulative=True)
        assert pen.sizing_extra_s(10) == 15.0
        assert pen.actual_extra_s(4) == 6.0

    def test_constant_mode(self):
        pen = TransferTimePenalty(extra_s_per_client=1.5, cumulative=False)
        assert pen.sizing_extra_s(35) == 1.5
        assert pen.actual_extra_s(20) == 1.5
        assert pen.actual_extra_s(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferTimePenalty(extra_s_per_client=-1.0)
        with pytest.raises(ValueError):
            TransferTimePenalty().sizing_extra_s(0)


class TestClientLoss:
    def test_mean_matches_fraction(self):
        loss = ClientLoss(mean_fraction=0.10, std=2.0)
        rng = make_rng(0)
        draws = [loss.draw_lost(200, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(20.0, rel=0.05)

    def test_clipped_to_bounds(self):
        loss = ClientLoss(mean_fraction=0.5, std=100.0)
        rng = make_rng(1)
        for _ in range(100):
            lost = loss.draw_lost(10, rng)
            assert 0 <= lost <= 10

    def test_zero_clients(self):
        assert ClientLoss().draw_lost(0, make_rng(0)) == 0

    def test_array_draw_matches_statistics(self):
        loss = ClientLoss(mean_fraction=0.10, std=2.0)
        n = np.full(5000, 300)
        lost = loss.draw_lost_array(n, make_rng(2))
        assert lost.mean() == pytest.approx(30.0, rel=0.05)
        assert np.all(lost >= 0) and np.all(lost <= 300)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientLoss(mean_fraction=1.5)


class TestLossConfig:
    def test_none(self):
        cfg = LossConfig.none()
        assert not cfg.any_active
        assert cfg.describe() == "no loss"

    def test_all_paper(self):
        cfg = LossConfig.all_paper()
        assert cfg.any_active
        assert cfg.saturation.base == "slot"
        assert cfg.transfer.cumulative is True
        assert "A(" in cfg.describe() and "B(" in cfg.describe() and "C(" in cfg.describe()

    def test_fig9_variant(self):
        cfg = LossConfig.fig9()
        assert cfg.saturation.base == "active"
        assert cfg.transfer.cumulative is False


class TestSaturationEdgeCases:
    def test_margin_equal_to_capacity_penalizes_every_client(self):
        # threshold = max(max_parallel - margin, 0) = 0: each admitted
        # client is "over" and contributes one rate step.
        pen = SaturationPenalty(margin=10, rate=0.1)
        for k in range(11):
            assert pen.multiplier(k, 10) == pytest.approx(1.0 + 0.1 * k)

    def test_margin_beyond_capacity_behaves_identically(self):
        at_cap = SaturationPenalty(margin=10, rate=0.1)
        beyond = SaturationPenalty(margin=50, rate=0.1)
        for k in range(11):
            assert beyond.multiplier(k, 10) == at_cap.multiplier(k, 10)

    def test_empty_slot_is_never_penalized(self):
        assert SaturationPenalty(margin=50, rate=0.1).multiplier(0, 10) == 1.0


class TestTransferPenaltyEdgeCases:
    def test_empty_slot_has_no_stretch(self):
        assert TransferTimePenalty(1.5, cumulative=True).actual_extra_s(0) == 0.0
        assert TransferTimePenalty(1.5, cumulative=False).actual_extra_s(0) == 0.0

    def test_constant_mode_is_flat_for_any_occupancy(self):
        pen = TransferTimePenalty(1.5, cumulative=False)
        assert pen.actual_extra_s(1) == pen.actual_extra_s(35) == 1.5

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            TransferTimePenalty(1.5).actual_extra_s(-1)


class TestClientLossProperties:
    @given(
        n=st.integers(min_value=0, max_value=2000),
        frac=st.floats(min_value=0.0, max_value=1.0),
        std=st.floats(min_value=0.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_scalar_and_array_draws_agree_on_same_stream(self, n, frac, std, seed):
        loss = ClientLoss(mean_fraction=frac, std=std)
        scalar = loss.draw_lost(n, make_rng(seed))
        array = loss.draw_lost_array(np.array([n]), make_rng(seed))
        if n > 0:
            assert int(array[0]) == scalar
        else:
            # n = 0 short-circuits before consuming the stream; both
            # readings must still report zero lost clients.
            assert scalar == 0 and int(array[0]) == 0

    @given(
        n=st.integers(min_value=0, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_draw_is_clipped_to_fleet(self, n, seed):
        loss = ClientLoss(mean_fraction=0.9, std=40.0)  # wild draws
        lost = loss.draw_lost(n, make_rng(seed))
        assert 0 <= lost <= n

    def test_array_draw_clips_elementwise(self):
        loss = ClientLoss(mean_fraction=0.5, std=100.0)
        fleets = np.array([0, 1, 2, 5, 300])
        lost = loss.draw_lost_array(fleets, make_rng(0))
        assert np.all(lost >= 0) and np.all(lost <= fleets)

    def test_negative_fleet_rejected(self):
        loss = ClientLoss()
        with pytest.raises(ValueError):
            loss.draw_lost(-1, make_rng(0))
        with pytest.raises(ValueError):
            loss.draw_lost_array(np.array([3, -1]), make_rng(0))
