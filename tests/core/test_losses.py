"""Tests for the loss models."""

import numpy as np
import pytest

from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.util.rng import make_rng


class TestSaturationPenalty:
    def test_no_penalty_below_threshold(self):
        pen = SaturationPenalty(margin=5, rate=0.1)
        assert pen.multiplier(5, 10) == 1.0

    def test_paper_example_full_slot(self):
        """10/slot, margin 5: a full slot has 5 clients over -> x1.5."""
        pen = SaturationPenalty(margin=5, rate=0.1)
        assert pen.multiplier(10, 10) == pytest.approx(1.5)

    def test_linear_in_overage(self):
        pen = SaturationPenalty(margin=5, rate=0.1)
        assert pen.multiplier(7, 10) == pytest.approx(1.2)

    def test_margin_larger_than_capacity(self):
        pen = SaturationPenalty(margin=20, rate=0.1)
        assert pen.multiplier(3, 10) == pytest.approx(1.3)  # threshold clamps to 0

    def test_occupancy_bounds(self):
        pen = SaturationPenalty()
        with pytest.raises(ValueError):
            pen.multiplier(11, 10)

    def test_base_validation(self):
        with pytest.raises(ValueError):
            SaturationPenalty(base="idle")
        SaturationPenalty(base="active")  # valid


class TestTransferTimePenalty:
    def test_cumulative_sizing(self):
        pen = TransferTimePenalty(extra_s_per_client=1.5, cumulative=True)
        assert pen.sizing_extra_s(10) == 15.0
        assert pen.actual_extra_s(4) == 6.0

    def test_constant_mode(self):
        pen = TransferTimePenalty(extra_s_per_client=1.5, cumulative=False)
        assert pen.sizing_extra_s(35) == 1.5
        assert pen.actual_extra_s(20) == 1.5
        assert pen.actual_extra_s(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferTimePenalty(extra_s_per_client=-1.0)
        with pytest.raises(ValueError):
            TransferTimePenalty().sizing_extra_s(0)


class TestClientLoss:
    def test_mean_matches_fraction(self):
        loss = ClientLoss(mean_fraction=0.10, std=2.0)
        rng = make_rng(0)
        draws = [loss.draw_lost(200, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(20.0, rel=0.05)

    def test_clipped_to_bounds(self):
        loss = ClientLoss(mean_fraction=0.5, std=100.0)
        rng = make_rng(1)
        for _ in range(100):
            lost = loss.draw_lost(10, rng)
            assert 0 <= lost <= 10

    def test_zero_clients(self):
        assert ClientLoss().draw_lost(0, make_rng(0)) == 0

    def test_array_draw_matches_statistics(self):
        loss = ClientLoss(mean_fraction=0.10, std=2.0)
        n = np.full(5000, 300)
        lost = loss.draw_lost_array(n, make_rng(2))
        assert lost.mean() == pytest.approx(30.0, rel=0.05)
        assert np.all(lost >= 0) and np.all(lost <= 300)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientLoss(mean_fraction=1.5)


class TestLossConfig:
    def test_none(self):
        cfg = LossConfig.none()
        assert not cfg.any_active
        assert cfg.describe() == "no loss"

    def test_all_paper(self):
        cfg = LossConfig.all_paper()
        assert cfg.any_active
        assert cfg.saturation.base == "slot"
        assert cfg.transfer.cumulative is True
        assert "A(" in cfg.describe() and "B(" in cfg.describe() and "C(" in cfg.describe()

    def test_fig9_variant(self):
        cfg = LossConfig.fig9()
        assert cfg.saturation.base == "active"
        assert cfg.transfer.cumulative is False
