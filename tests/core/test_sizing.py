"""Tests for deployment sizing tools."""

import pytest

from repro.core.losses import ClientLoss, LossConfig, TransferTimePenalty
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM
from repro.core.sizing import minimum_battery_for_uptime, servers_for_fleet
from repro.energy.battery import Battery
from repro.util.units import MINUTE


class TestBatterySizing:
    def test_faster_schedule_needs_bigger_battery(self):
        slow = minimum_battery_for_uptime(120 * MINUTE, cloudiness=0.4, seed=11)
        fast = minimum_battery_for_uptime(5 * MINUTE, cloudiness=0.4, seed=11)
        assert fast.capacity_joules > slow.capacity_joules

    def test_cloudier_weather_needs_bigger_battery(self):
        sunny = minimum_battery_for_uptime(30 * MINUTE, cloudiness=0.2, seed=11)
        gloomy = minimum_battery_for_uptime(30 * MINUTE, cloudiness=0.8, seed=11)
        assert gloomy.capacity_joules > sunny.capacity_joules

    def test_sized_battery_actually_reaches_target(self):
        sizing = minimum_battery_for_uptime(30 * MINUTE, cloudiness=0.5, target_uptime=0.99, seed=11)
        assert sizing.achieved_uptime >= 0.99

    def test_paper_bank_comparison_field(self):
        sizing = minimum_battery_for_uptime(60 * MINUTE, cloudiness=0.3, seed=11)
        assert sizing.relative_to_paper_bank == pytest.approx(
            sizing.capacity_joules / Battery.DEFAULT_CAPACITY
        )
        assert sizing.capacity_wh > 0

    def test_impossible_load_raises(self):
        # An absurdly overcast regime where the panel can't carry 5-min cycles.
        with pytest.raises(ValueError, match="cannot"):
            minimum_battery_for_uptime(
                5 * MINUTE, cloudiness=1.0, seed=11, max_capacity=Battery.DEFAULT_CAPACITY * 0.01
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_battery_for_uptime(0.0)
        with pytest.raises(ValueError):
            minimum_battery_for_uptime(300.0, target_uptime=1.5)


class TestServersForFleet:
    def test_edge_scenario_needs_none(self):
        assert servers_for_fleet(1000, EDGE_SVM) == 0

    def test_ideal_counts(self):
        assert servers_for_fleet(180, EDGE_CLOUD_SVM) == 1
        assert servers_for_fleet(181, EDGE_CLOUD_SVM) == 2

    def test_safety_margin(self):
        assert servers_for_fleet(180, EDGE_CLOUD_SVM, safety_margin=1) == 2

    def test_sizes_for_initial_fleet_under_dropout(self):
        """Dropout must not shrink provisioning: sizing strips loss C."""
        losses = LossConfig(client_loss=ClientLoss(mean_fraction=0.5, std=0.0))
        assert servers_for_fleet(180, EDGE_CLOUD_SVM, losses=losses, seed=0) == 1
        assert servers_for_fleet(181, EDGE_CLOUD_SVM, losses=losses, seed=0) == 2

    def test_transfer_loss_raises_requirement(self):
        losses = LossConfig(transfer=TransferTimePenalty(cumulative=True))
        assert servers_for_fleet(350, EDGE_CLOUD_SVM, losses=losses) == 4  # Fig 8b
