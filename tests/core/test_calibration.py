"""Tests pinning the calibration constants to the published tables."""

import pytest

from repro.core.calibration import CYCLE_SECONDS, PAPER, table1_rows, table2_rows


class TestRoutineStats:
    def test_energy_consistent_with_duration_and_power(self):
        r = PAPER.routine
        assert r.implied_energy_j == pytest.approx(r.energy_j, rel=0.005)

    def test_published_values(self):
        r = PAPER.routine
        assert r.duration_s == 89.0  # 1 min 29 s
        assert r.power_w == 2.14
        assert r.energy_j == 190.1
        assert r.duration_std_s == 3.5
        assert r.power_std_w == 0.009


class TestTable1:
    @pytest.mark.parametrize("model,total", [("svm", 366.3), ("cnn", 367.5)])
    def test_totals(self, model, total):
        rows = table1_rows(model)
        assert sum(t.energy for t in rows) == pytest.approx(total, abs=0.05)
        assert sum(t.duration for t in rows) == pytest.approx(CYCLE_SECONDS, abs=0.05)

    def test_svm_rows_verbatim(self):
        rows = {t.name: t for t in table1_rows("svm")}
        assert rows["sleep"].energy == 111.6 and rows["sleep"].duration == 178.5
        assert rows["wake_collect"].energy == 131.8 and rows["wake_collect"].duration == 64.0
        assert rows["queen_detection_svm"].energy == 98.9
        assert rows["send_results"].energy == 3.0
        assert rows["shutdown"].energy == 21.0

    def test_sleep_power_implied(self):
        rows = {t.name: t for t in table1_rows("svm")}
        assert rows["sleep"].power == pytest.approx(PAPER.sleep_watts, rel=0.001)

    def test_model_choice_small_difference(self):
        """§V: only 1.2 J difference between SVM and CNN at the edge."""
        svm = sum(t.energy for t in table1_rows("svm"))
        cnn = sum(t.energy for t in table1_rows("cnn"))
        assert abs(cnn - svm) == pytest.approx(1.2, abs=0.05)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            table1_rows("transformer")


class TestTable2:
    @pytest.mark.parametrize(
        "model,edge_total,cloud_total",
        [("svm", 322.0, 13744.3), ("cnn", 322.0, 13806.0)],
    )
    def test_totals(self, model, edge_total, cloud_total):
        rows = table2_rows(model)
        assert sum(t.energy for t in rows["edge"]) == pytest.approx(edge_total, abs=0.1)
        assert sum(t.energy for t in rows["cloud"]) == pytest.approx(cloud_total, abs=0.5)

    def test_both_sides_span_cycle(self):
        for model in ("svm", "cnn"):
            rows = table2_rows(model)
            assert sum(t.duration for t in rows["edge"]) == pytest.approx(CYCLE_SECONDS, abs=0.05)
            assert sum(t.duration for t in rows["cloud"]) == pytest.approx(CYCLE_SECONDS, abs=0.05)

    def test_cloud_model_difference(self):
        """§V: 61.7 J difference between models on the server."""
        svm = sum(t.energy for t in table2_rows("svm")["cloud"])
        cnn = sum(t.energy for t in table2_rows("cnn")["cloud"])
        assert cnn - svm == pytest.approx(61.7, abs=0.5)

    def test_server_powers_derived_correctly(self):
        # Idle: 9415 J over 211.1 s; receive: 1032 J over 15 s.
        assert PAPER.server_idle_w == pytest.approx(9415 / 211.1, rel=0.01)
        assert PAPER.server_receive_w == pytest.approx(1032 / 15.0, rel=0.01)


class TestSectionVIConstants:
    def test_slot_guard_yields_18_svm_slots(self):
        slot = PAPER.send_audio_s + PAPER.svm_cloud_s + PAPER.slot_guard_s
        assert int(CYCLE_SECONDS // slot) == 18

    def test_fig7b_full_server_is_630(self):
        slot = PAPER.send_audio_s + PAPER.svm_cloud_s + PAPER.slot_guard_s
        assert int(CYCLE_SECONDS // slot) * 35 == PAPER.max_gap_clients_at_35 == 630

    def test_fig3_surge_reproduces_119(self):
        avg5 = (PAPER.routine.energy_j + PAPER.wake_surge_j
                + PAPER.sleep_watts * (300 - PAPER.routine.duration_s)) / 300.0
        assert avg5 == pytest.approx(PAPER.fig3_power_at_5min_w, abs=0.01)
