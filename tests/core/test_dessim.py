"""DES vs analytic cross-validation — the two simulators must agree exactly."""

import pytest

from repro.core.dessim import run_des_fleet
from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM, make_scenario
from repro.core.simulate import simulate_fleet


class TestEdgeOnlyAgreement:
    def test_per_client_cycle_energy(self):
        des = run_des_fleet(5, EDGE_SVM, n_cycles=2)
        assert des.edge_energy_per_client_cycle == pytest.approx(
            EDGE_SVM.client.cycle_energy, rel=1e-9
        )

    def test_total_matches_analytic(self):
        des = run_des_fleet(7, EDGE_SVM, n_cycles=3)
        analytic = simulate_fleet(7, EDGE_SVM)
        assert des.edge_energy_j == pytest.approx(3 * analytic.edge_energy_j, rel=1e-9)


class TestEdgeCloudAgreement:
    @pytest.mark.parametrize("n_clients", [1, 10, 25, 180, 200])
    def test_no_loss(self, n_clients):
        des = run_des_fleet(n_clients, EDGE_CLOUD_SVM, n_cycles=1)
        analytic = simulate_fleet(n_clients, EDGE_CLOUD_SVM)
        assert des.edge_energy_j == pytest.approx(analytic.edge_energy_j, rel=1e-9)
        assert des.server_energy_j == pytest.approx(analytic.server_energy_j, rel=1e-9)
        assert len(des.server_accounts) == analytic.n_servers

    def test_multiple_cycles_scale_linearly(self):
        one = run_des_fleet(30, EDGE_CLOUD_SVM, n_cycles=1)
        three = run_des_fleet(30, EDGE_CLOUD_SVM, n_cycles=3)
        assert three.total_energy_j == pytest.approx(3 * one.total_energy_j, rel=1e-9)

    @pytest.mark.parametrize(
        "losses",
        [
            LossConfig(saturation=SaturationPenalty()),
            LossConfig(saturation=SaturationPenalty(base="active")),
            LossConfig(transfer=TransferTimePenalty(cumulative=True)),
            LossConfig(transfer=TransferTimePenalty(cumulative=False)),
            LossConfig(saturation=SaturationPenalty(), transfer=TransferTimePenalty()),
        ],
    )
    def test_deterministic_losses(self, losses):
        des = run_des_fleet(35, EDGE_CLOUD_SVM, n_cycles=1, losses=losses)
        analytic = simulate_fleet(35, EDGE_CLOUD_SVM, losses=losses)
        assert des.server_energy_j == pytest.approx(analytic.server_energy_j, rel=1e-9)

    def test_cnn_scenario(self):
        scenario = make_scenario("edge+cloud", "cnn")
        des = run_des_fleet(20, scenario, n_cycles=1)
        analytic = simulate_fleet(20, scenario)
        assert des.server_energy_j == pytest.approx(analytic.server_energy_j, rel=1e-9)
        assert des.edge_energy_j == pytest.approx(analytic.edge_energy_j, rel=1e-9)

    def test_max_parallel_35(self):
        scenario = make_scenario("edge+cloud", "svm", max_parallel=35)
        des = run_des_fleet(70, scenario, n_cycles=1)
        analytic = simulate_fleet(70, scenario)
        assert des.server_energy_j == pytest.approx(analytic.server_energy_j, rel=1e-9)


class TestLedgerDetail:
    def test_client_categories(self):
        des = run_des_fleet(1, EDGE_CLOUD_SVM, n_cycles=1)
        acc = des.client_accounts[0]
        assert acc.category_total("send_audio") == pytest.approx(37.3)
        assert acc.category_total("wake_collect") == pytest.approx(131.8)

    def test_server_categories(self):
        des = run_des_fleet(10, EDGE_CLOUD_SVM, n_cycles=1)
        acc = des.server_accounts[0]
        assert acc.category_total("receive") == pytest.approx(68.8 * 15.0)
        assert acc.category_total("service") > 0

    def test_saturation_penalty_category(self):
        losses = LossConfig(saturation=SaturationPenalty())
        des = run_des_fleet(10, EDGE_CLOUD_SVM, n_cycles=1, losses=losses)
        acc = des.server_accounts[0]
        assert acc.category_total("saturation_penalty") > 0


class TestValidation:
    def test_loss_c_unsupported(self):
        with pytest.raises(ValueError, match="loss model C"):
            run_des_fleet(5, EDGE_CLOUD_SVM, losses=LossConfig(client_loss=ClientLoss()))

    def test_bad_counts(self):
        # n_clients=0 is valid since PR 4 (tests/core/test_zero_fleet.py);
        # only negative fleets and empty horizons are rejected.
        with pytest.raises(ValueError):
            run_des_fleet(-1, EDGE_SVM)
        with pytest.raises(ValueError):
            run_des_fleet(1, EDGE_SVM, n_cycles=0)
