"""SoA per-client kernel: bit-identity to the scalar DES (repro.core.dessim_array)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dessim import run_des_fleet
from repro.core.dessim_array import run_des_fleet_array
from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import EDGE_CLOUD_CNN, EDGE_CLOUD_SVM, EDGE_SVM, all_scenarios


def assert_results_bit_identical(scalar, array):
    """Ledger contents (values *and* key order) must match per entity."""
    assert array.n_clients == scalar.n_clients
    assert len(array.client_accounts) == len(scalar.client_accounts)
    assert len(array.server_accounts) == len(scalar.server_accounts)
    for a, b in zip(scalar.client_accounts, array.client_accounts):
        assert list(a._totals) == list(b._totals)
        assert a._totals == b._totals
        assert a._durations == b._durations
    for a, b in zip(scalar.server_accounts, array.server_accounts):
        assert a.owner == b.owner
        assert list(a._totals) == list(b._totals)
        assert a._totals == b._totals
        assert a._durations == b._durations
    assert array.edge_energy_j == scalar.edge_energy_j
    assert array.server_energy_j == scalar.server_energy_j
    assert array.total_energy_j == scalar.total_energy_j


class TestBitIdentity:
    @pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
    def test_matches_scalar_kernel(self, scenario):
        scalar = run_des_fleet(40, scenario, n_cycles=3, validate=False)
        array = run_des_fleet_array(40, scenario, n_cycles=3, validate=False)
        assert_results_bit_identical(scalar, array)

    def test_matches_under_losses(self):
        losses = LossConfig(saturation=SaturationPenalty(), transfer=TransferTimePenalty())
        scalar = run_des_fleet(33, EDGE_CLOUD_SVM, n_cycles=4, losses=losses, validate=True)
        array = run_des_fleet_array(33, EDGE_CLOUD_SVM, n_cycles=4, losses=losses, validate=True)
        assert_results_bit_identical(scalar, array)

    @settings(max_examples=25, deadline=None)
    @given(
        n_clients=st.integers(min_value=0, max_value=60),
        n_cycles=st.integers(min_value=1, max_value=4),
        scenario=st.sampled_from([EDGE_SVM, EDGE_CLOUD_SVM, EDGE_CLOUD_CNN]),
        saturation=st.booleans(),
        transfer=st.booleans(),
    )
    def test_property_scalar_equals_array(self, n_clients, n_cycles, scenario, saturation, transfer):
        losses = LossConfig(
            saturation=SaturationPenalty() if saturation else None,
            transfer=TransferTimePenalty() if transfer else None,
        )
        scalar = run_des_fleet(n_clients, scenario, n_cycles=n_cycles, losses=losses, validate=False)
        array = run_des_fleet_array(
            n_clients, scenario, n_cycles=n_cycles, losses=losses, validate=False
        )
        assert_results_bit_identical(scalar, array)

    def test_matches_wheel_engine_scalar(self):
        # Transitivity closes the triangle: heap scalar == wheel scalar ==
        # array, so one cross-check pins all three kernels together.
        wheel = run_des_fleet(40, EDGE_CLOUD_SVM, n_cycles=3, validate=False, engine_queue="wheel")
        array = run_des_fleet_array(40, EDGE_CLOUD_SVM, n_cycles=3, validate=False)
        assert_results_bit_identical(wheel, array)


class TestLedgerSharing:
    def test_equal_offsets_share_representative(self):
        from repro.core.dessim import fleet_wake_offsets

        n = 1500  # enough slots that late slots wake after the pre-send work
        res = run_des_fleet_array(n, EDGE_CLOUD_SVM, n_cycles=1, validate=False)
        _, _, offsets = fleet_wake_offsets(
            n, EDGE_CLOUD_SVM, res.period, LossConfig.none(), None
        )
        assert len({id(a) for a in res.client_accounts}) == len(set(offsets.values())) > 1
        # Same-slot clients share one ledger owned by the lowest member id.
        p = EDGE_CLOUD_SVM.server.max_parallel
        assert res.client_accounts[0] is res.client_accounts[p - 1]
        assert res.client_accounts[0].owner == "client-0"
        by_offset = {}
        for cid in range(n):
            by_offset.setdefault(offsets[cid], cid)
        for cid in range(n):
            assert res.client_accounts[cid].owner == f"client-{by_offset[offsets[cid]]}"

    def test_edge_only_fleet_shares_one_ledger(self):
        res = run_des_fleet_array(10, EDGE_SVM, n_cycles=2, validate=False)
        assert len({id(a) for a in res.client_accounts}) == 1
        assert res.server_accounts == ()


class TestPreconditions:
    def test_rejects_negative_clients(self):
        with pytest.raises(ValueError):
            run_des_fleet_array(-1, EDGE_CLOUD_SVM)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            run_des_fleet_array(5, EDGE_CLOUD_SVM, n_cycles=0)

    def test_rejects_loss_model_c(self):
        losses = LossConfig(client_loss=ClientLoss(0.1, 0.05))
        with pytest.raises(ValueError, match="loss model C"):
            run_des_fleet_array(5, EDGE_CLOUD_SVM, losses=losses)

    def test_empty_fleet(self):
        res = run_des_fleet_array(0, EDGE_CLOUD_SVM, n_cycles=2, validate=False)
        assert res.client_accounts == () and res.edge_energy_j == 0.0
