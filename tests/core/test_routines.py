"""Tests for scenario construction."""

import pytest

from repro.core.calibration import PAPER
from repro.core.routines import (
    EDGE_CLOUD_CNN,
    EDGE_CLOUD_SVM,
    EDGE_CNN,
    EDGE_SVM,
    all_scenarios,
    data_collection_routine,
    edge_cloud_client_tasks,
    edge_scenario_tasks,
    make_scenario,
)


class TestTaskBuilders:
    def test_edge_tasks_exclude_sleep(self):
        names = [t.name for t in edge_scenario_tasks("svm")]
        assert "sleep" not in names
        assert "queen_detection_svm" in names

    def test_edge_cloud_tasks_include_send_audio(self):
        names = [t.name for t in edge_cloud_client_tasks("cnn")]
        assert "send_audio" in names
        assert "queen_detection_cnn" not in names  # the service runs in the cloud

    def test_data_collection_routine_matches_section4(self):
        routine = data_collection_routine()
        assert routine.total_duration == PAPER.routine.duration_s
        assert routine.total_energy == PAPER.routine.energy_j


class TestScenarios:
    def test_edge_scenarios_have_no_server(self):
        assert EDGE_SVM.is_edge_only and EDGE_CNN.is_edge_only

    def test_cloud_scenarios_have_server(self):
        assert not EDGE_CLOUD_SVM.is_edge_only
        assert EDGE_CLOUD_SVM.server.service.name == "queen_detection_svm"

    def test_client_cycle_energies_match_tables(self):
        assert EDGE_SVM.client_cycle_energy == pytest.approx(366.3, abs=0.2)
        assert EDGE_CNN.client_cycle_energy == pytest.approx(367.5, abs=0.2)
        assert EDGE_CLOUD_SVM.client_cycle_energy == pytest.approx(322.0, abs=0.2)
        assert EDGE_CLOUD_CNN.client_cycle_energy == pytest.approx(322.0, abs=0.2)

    def test_offloading_saves_roughly_12_percent(self):
        saving = 1.0 - EDGE_CLOUD_SVM.client_cycle_energy / EDGE_SVM.client_cycle_energy
        assert saving == pytest.approx(0.121, abs=0.005)

    def test_factory(self):
        s = make_scenario("edge+cloud", "cnn", max_parallel=35)
        assert s.server.max_parallel == 35

    def test_factory_validation(self):
        with pytest.raises(ValueError):
            make_scenario("fog", "svm")
        with pytest.raises(ValueError):
            make_scenario("edge", "rnn")

    def test_with_max_parallel_requires_server(self):
        with pytest.raises(ValueError):
            EDGE_SVM.with_max_parallel(10)

    def test_all_scenarios(self):
        assert len(all_scenarios()) == 4
