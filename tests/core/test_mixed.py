"""Tests for heterogeneous (mixed-period) fleets."""

import pytest

from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import ClientLoss, LossConfig
from repro.core.mixed import ClientGroup, simulate_mixed_fleet
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM, make_scenario
from repro.core.simulate import simulate_fleet
from repro.util.units import MINUTE


def cloud_group(name, count, period_mult=1):
    client = EDGE_CLOUD_SVM.client.with_period(CYCLE_SECONDS * period_mult)
    return ClientGroup(name, client, count)


class TestClientGroup:
    def test_period_multiple(self):
        assert cloud_group("a", 5, 2).period_multiple(CYCLE_SECONDS) == 2

    def test_non_integer_multiple_rejected(self):
        client = EDGE_CLOUD_SVM.client.with_period(450.0)
        with pytest.raises(ValueError, match="integer"):
            ClientGroup("bad", client, 1).period_multiple(CYCLE_SECONDS)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ClientGroup("x", EDGE_CLOUD_SVM.client, -1)


class TestHomogeneousReduction:
    def test_single_group_matches_simulate_fleet(self):
        """One group at the base period must reproduce the homogeneous model."""
        server = EDGE_CLOUD_SVM.server
        for n in (10, 50, 180, 200):
            mixed = simulate_mixed_fleet([cloud_group("g", n)], server)
            homo = simulate_fleet(n, EDGE_CLOUD_SVM)
            assert mixed.n_servers == homo.n_servers
            assert mixed.server_energy_per_cycle == pytest.approx(homo.server_energy_j, rel=1e-12)
            assert mixed.edge_energy_per_cycle == pytest.approx(homo.edge_energy_j, rel=1e-12)

    def test_edge_only_group(self):
        group = ClientGroup("edge", EDGE_SVM.client, 40, uploads=False)
        result = simulate_mixed_fleet([group], server=None)
        assert result.n_servers == 0
        assert result.server_energy_per_cycle == 0.0
        assert result.edge_energy_per_cycle == pytest.approx(40 * 366.26, rel=0.001)


class TestMixedPeriods:
    def test_slow_group_amortized(self):
        """A 2x-period group uploads every other cycle: half the slot load."""
        server = EDGE_CLOUD_SVM.server
        result = simulate_mixed_fleet([cloud_group("slow", 100, period_mult=2)], server)
        assert result.hyperperiod == 2 * CYCLE_SECONDS
        assert result.due_per_cycle == (50, 50)  # phases striped evenly

    def test_slow_clients_cost_less_per_cycle(self):
        server = EDGE_CLOUD_SVM.server
        fast = simulate_mixed_fleet([cloud_group("fast", 100, 1)], server)
        slow = simulate_mixed_fleet([cloud_group("slow", 100, 2)], server)
        assert slow.edge_energy_per_cycle < fast.edge_energy_per_cycle
        assert slow.server_energy_per_cycle < fast.server_energy_per_cycle

    def test_staggering_saves_servers(self):
        """360 clients at 2x period fit one 180-capacity server; at 1x they
        would need two — the headline benefit of phase striping."""
        server = EDGE_CLOUD_SVM.server  # capacity 180 at 10/slot
        slow = simulate_mixed_fleet([cloud_group("slow", 360, 2)], server)
        fast = simulate_mixed_fleet([cloud_group("fast", 360, 1)], server)
        assert slow.n_servers == 1
        assert fast.n_servers == 2

    def test_two_groups_share_servers(self):
        server = EDGE_CLOUD_SVM.server
        result = simulate_mixed_fleet(
            [cloud_group("audio", 90, 1), cloud_group("temp", 180, 2)], server
        )
        # Per cycle: 90 + 90 due -> exactly one full server.
        assert result.due_per_cycle == (180, 180)
        assert result.n_servers == 1

    def test_hyperperiod_lcm(self):
        server = EDGE_CLOUD_SVM.server
        result = simulate_mixed_fleet(
            [cloud_group("a", 10, 2), cloud_group("b", 10, 3)], server
        )
        assert result.hyperperiod == 6 * CYCLE_SECONDS
        assert len(result.due_per_cycle) == 6

    def test_mixed_with_edge_only_group(self):
        server = EDGE_CLOUD_SVM.server
        groups = [
            cloud_group("uploaders", 50, 1),
            ClientGroup("edge-only", EDGE_SVM.client, 20, uploads=False),
        ]
        result = simulate_mixed_fleet(groups, server)
        assert result.peak_due == 50
        names = [name for name, _ in result.group_edge_energy_per_cycle]
        assert names == ["uploaders", "edge-only"]

    def test_render(self):
        result = simulate_mixed_fleet([cloud_group("g", 30)], EDGE_CLOUD_SVM.server)
        assert "Mixed fleet" in result.render()


class TestValidation:
    def test_no_groups(self):
        with pytest.raises(ValueError):
            simulate_mixed_fleet([], EDGE_CLOUD_SVM.server)

    def test_uploaders_need_server(self):
        with pytest.raises(ValueError, match="server"):
            simulate_mixed_fleet([cloud_group("g", 10)], server=None)

    def test_loss_c_unsupported(self):
        with pytest.raises(ValueError, match="loss model C"):
            simulate_mixed_fleet(
                [cloud_group("g", 10)],
                EDGE_CLOUD_SVM.server,
                losses=LossConfig(client_loss=ClientLoss()),
            )
