"""Property-test net over the incremental allocator (`repro.core.livealloc`).

The central claim: **after any interleaving of admit/release/repack, the
live state is bit-identical to the batch ``Allocator.allocate`` fold over
the surviving client sequence** — for all seven filling policies — and the
slot/occupancy invariants hold after every single step.  Legacy loop-based
reference implementations of the PR 8 trio are kept here so the fold
refactor in ``repro.core.allocator`` is checked against the historical
layouts, not against itself; the four policies added with the
``PlacementPolicy`` interface (best-fit, worst-fit, solar-budget,
swarm-scored) get the same interleaving net plus direct structural checks
of their layout semantics.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import (
    Allocation,
    BalancedPolicy,
    FirstFitPolicy,
    ServerAssignment,
)
from repro.core.livealloc import (
    POLICY_KINDS,
    AdmissionFull,
    LiveAllocation,
    materialize,
)
from repro.core.placement import (
    BestFitPolicy,
    SwarmScoredPolicy,
    resolve_policy,
)
from repro.core.server import SlotPlan
from repro.validate.errors import InvariantViolation

# the same instances LiveAllocation(plan, kind) resolves to — swarm-scored
# with the default seed 0, so string and object construction agree
POLICIES = {kind: resolve_policy(kind) for kind in POLICY_KINDS}

#: Policies whose servers fill slots in ordinal order, so a materialized
#: assignment's tuple index *is* the placement's slot ordinal.
PREFIX_KINDS = ("first-fit", "round-robin", "balanced", "best-fit", "worst-fit")


# ---------------------------------------------------------------------------
# legacy reference implementations (pre-fold loop fills, kept verbatim)
# ---------------------------------------------------------------------------


def legacy_first_fit(client_ids, plan):
    servers, ids, pos, k = [], list(client_ids), 0, 0
    while pos < len(ids):
        slots = []
        for _ in range(plan.slots_per_cycle):
            if pos >= len(ids):
                break
            take = min(plan.max_parallel, len(ids) - pos)
            slots.append(tuple(ids[pos : pos + take]))
            pos += take
        servers.append(ServerAssignment(k, tuple(slots)))
        k += 1
    return Allocation(tuple(servers), plan)


def legacy_round_robin(client_ids, plan):
    ids = list(client_ids)
    cap = plan.capacity
    servers = []
    for k in range(max(1, math.ceil(len(ids) / cap)) if ids else 0):
        chunk = ids[k * cap : (k + 1) * cap]
        slots = [[] for _ in range(plan.slots_per_cycle)]
        for i, cid in enumerate(chunk):
            slots[i % plan.slots_per_cycle].append(cid)
        servers.append(ServerAssignment(k, tuple(tuple(s) for s in slots if s)))
    return Allocation(tuple(servers), plan)


def legacy_balanced(client_ids, plan):
    ids = list(client_ids)
    if not ids:
        return Allocation((), plan)
    n_servers = math.ceil(len(ids) / plan.capacity)
    base, extra = divmod(len(ids), n_servers * plan.slots_per_cycle)
    servers, pos, g = [], 0, 0
    for k in range(n_servers):
        slots = []
        for _ in range(plan.slots_per_cycle):
            take = base + (1 if g < extra else 0)
            g += 1
            if take == 0:
                continue
            slots.append(tuple(ids[pos : pos + take]))
            pos += take
        servers.append(ServerAssignment(k, tuple(slots)))
    return Allocation(tuple(servers), plan)


LEGACY = {
    "first-fit": legacy_first_fit,
    "round-robin": legacy_round_robin,
    "balanced": legacy_balanced,
}

plans = st.builds(
    SlotPlan,
    slot_duration=st.just(16.6),
    slots_per_cycle=st.integers(min_value=1, max_value=18),
    max_parallel=st.integers(min_value=1, max_value=10),
)

kinds = st.sampled_from(POLICY_KINDS)
legacy_kinds = st.sampled_from(tuple(LEGACY))


def assert_identical(a: Allocation, b: Allocation) -> None:
    assert a.plan == b.plan
    assert a.servers == b.servers  # tuple equality: bit-identical layout


# ---------------------------------------------------------------------------
# batch fold == legacy loops
# ---------------------------------------------------------------------------


class TestFoldMatchesLegacy:
    @settings(max_examples=120, deadline=None)
    @given(kind=legacy_kinds, plan=plans, n=st.integers(min_value=0, max_value=700))
    def test_policy_allocate_is_the_legacy_layout(self, kind, plan, n):
        assert_identical(
            POLICIES[kind].allocate(range(n), plan), LEGACY[kind](range(n), plan)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        kind=legacy_kinds,
        plan=plans,
        ids=st.lists(st.integers(min_value=0, max_value=10_000), unique=True, max_size=300),
    )
    def test_arbitrary_id_sequences(self, kind, plan, ids):
        assert_identical(POLICIES[kind].allocate(ids, plan), LEGACY[kind](ids, plan))

    @settings(max_examples=40, deadline=None)
    @given(kind=kinds, plan=plans, n=st.integers(min_value=1, max_value=400))
    def test_bulk_admit_equals_admit_loop(self, kind, plan, n):
        bulk = LiveAllocation(plan, kind)
        bulk.bulk_admit(range(n))
        loop = LiveAllocation(plan, kind)
        for cid in range(n):
            loop.admit(cid)
        assert_identical(bulk.to_allocation(), loop.to_allocation())

    def test_duplicate_admission_rejected_with_batch_message(self):
        live = LiveAllocation(SlotPlan(16.6, 18, 10), "first-fit")
        live.admit(7)
        with pytest.raises(ValueError, match="client 7 allocated twice"):
            live.admit(7)
        with pytest.raises(InvariantViolation):
            live.bulk_admit([8, 9, 8])
        # the failed bulk leaves a consistent structure behind
        live.check()
        assert 8 in live and 9 in live


# ---------------------------------------------------------------------------
# interleavings: admit/release/repack == batch over survivors, every step
# ---------------------------------------------------------------------------


def apply_ops(live: LiveAllocation, ops, check_every_step: bool):
    """Drive an op script; returns the surviving admission-order id list."""
    admitted = []  # survivors in admission order (the batch reference input)
    next_id = 0
    for op, arg in ops:
        if op == "admit":
            cid = next_id
            next_id += 1
            try:
                live.admit(cid)
            except AdmissionFull:
                continue
            admitted.append(cid)
        elif op == "release":
            if not admitted:
                continue
            cid = admitted.pop(arg % len(admitted))
            live.release(cid)
        else:  # repack
            if live.n_servers == 0:
                continue
            server = arg % live.n_servers
            result = live.repack_on_failure(server)
            assert not result.dropped  # elastic budget drops nobody
            # reference semantics: orphans move to the tail, in slot order
            admitted = [c for c in admitted if c not in set(result.orphans)]
            admitted.extend(result.readmitted)
        if check_every_step:
            live.check()
    return admitted


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["admit", "admit", "admit", "release", "repack"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=120,
)


class TestInterleavings:
    @settings(max_examples=80, deadline=None)
    @given(kind=kinds, plan=plans, ops=ops_strategy)
    def test_any_interleaving_ends_bit_identical_to_batch(self, kind, plan, ops):
        live = LiveAllocation(plan, kind)
        survivors = apply_ops(live, ops, check_every_step=False)
        live.check()
        assert live.client_ids() == survivors
        assert_identical(live.to_allocation(), POLICIES[kind].allocate(survivors, plan))
        if kind in LEGACY:
            assert_identical(live.to_allocation(), LEGACY[kind](survivors, plan))

    @settings(max_examples=25, deadline=None)
    @given(kind=kinds, plan=plans, ops=ops_strategy)
    def test_invariants_hold_after_every_step(self, kind, plan, ops):
        live = LiveAllocation(plan, kind)
        apply_ops(live, ops, check_every_step=True)

    @settings(max_examples=40, deadline=None)
    @given(
        kind=kinds,
        plan=plans,
        n=st.integers(min_value=1, max_value=300),
        drops=st.sets(st.integers(min_value=0, max_value=299), max_size=80),
    )
    def test_release_recompacts_to_the_survivor_fold(self, kind, plan, n, drops):
        live = LiveAllocation(plan, kind)
        live.bulk_admit(range(n))
        survivors = [c for c in range(n) if c not in drops]
        for cid in sorted(d for d in drops if d < n):
            live.release(cid)
        assert live.client_ids() == survivors
        assert_identical(live.to_allocation(), POLICIES[kind].allocate(survivors, plan))

    @settings(max_examples=40, deadline=None)
    @given(kind=st.sampled_from(PREFIX_KINDS), plan=plans,
           n=st.integers(min_value=1, max_value=400))
    def test_placement_of_matches_materialized_layout(self, kind, plan, n):
        live = LiveAllocation(plan, kind)
        live.bulk_admit(range(n))
        alloc = live.to_allocation()
        for srv in alloc.servers:
            for slot_idx, slot in enumerate(srv.slots):
                for pos, cid in enumerate(slot):
                    p = live.placement_of(cid)
                    assert (p.server, p.slot, p.position) == (
                        srv.server_index, slot_idx, pos,
                    )
                    assert live.slot_occupancy(p) == len(slot)
                    assert live.server_of(cid) == srv.server_index

    @settings(max_examples=40, deadline=None)
    @given(kind=kinds, plan=plans, n=st.integers(min_value=1, max_value=400))
    def test_placements_bucket_to_the_materialized_slots(self, kind, plan, n):
        """Ordinal-aware twin of the test above, valid for every policy.

        Solar-budget and swarm-scored fill slots out of schedule order, so
        ``Placement.slot`` (the schedule ordinal) need not equal the tuple
        index of the materialized assignment — but bucketing the per-client
        placements by (server, ordinal) and listing non-empty ordinals in
        order must reproduce the materialized slots exactly.
        """
        live = LiveAllocation(plan, kind)
        live.bulk_admit(range(n))
        groups = {}
        for cid in live.client_ids():
            p = live.placement_of(cid)
            assert 0 <= p.server < live.n_servers
            assert 0 <= p.slot < plan.slots_per_cycle
            assert 0 <= p.position < plan.max_parallel
            groups.setdefault(p.server, {}).setdefault(p.slot, []).append(
                (p.position, cid)
            )
            assert live.server_of(cid) == p.server
        alloc = live.to_allocation()
        assert alloc.n_servers == live.n_servers
        for srv in alloc.servers:
            by_ordinal = groups.get(srv.server_index, {})
            expected = tuple(
                tuple(cid for _, cid in sorted(by_ordinal[o]))
                for o in sorted(by_ordinal)
            )
            assert srv.slots == expected
        for server, by_ordinal in groups.items():
            for ordinal, members in by_ordinal.items():
                positions = sorted(pos for pos, _ in members)
                assert positions == list(range(len(members)))  # dense, unique
                p = live.placement_of(members[0][1])
                assert live.slot_occupancy(p) == len(members)


class TestBudgetAndRepack:
    def test_admission_full_raised_at_the_budget(self):
        plan = SlotPlan(16.6, 2, 3)  # capacity 6
        live = LiveAllocation(plan, "first-fit", max_servers=2)
        for cid in range(12):
            live.admit(cid)
        assert live.capacity_left == 0
        with pytest.raises(AdmissionFull) as err:
            live.admit(99)
        assert err.value.client_id == 99
        assert len(live) == 12

    def test_repack_reduce_capacity_drops_the_overflow(self):
        plan = SlotPlan(16.6, 2, 3)
        live = LiveAllocation(plan, "first-fit", max_servers=2)
        live.bulk_admit(range(12))
        result = live.repack_on_failure(0, reduce_capacity=True)
        assert result.orphans == tuple(range(6))
        # one server of capacity 6 remains: survivors 6..11 fill it, all
        # orphans of the failed server are dropped to the edge path
        assert result.readmitted == ()
        assert result.dropped == tuple(range(6))
        assert live.client_ids() == list(range(6, 12))
        live.check()

    def test_repack_elastic_moves_orphans_to_the_tail(self):
        plan = SlotPlan(16.6, 2, 2)  # capacity 4
        live = LiveAllocation(plan, "first-fit")
        live.bulk_admit(range(10))  # servers: [0..3], [4..7], [8..9]
        result = live.repack_on_failure(1)
        assert result.orphans == (4, 5, 6, 7)
        assert result.readmitted == result.orphans
        assert live.client_ids() == [0, 1, 2, 3, 8, 9, 4, 5, 6, 7]
        assert_identical(
            live.to_allocation(),
            FirstFitPolicy().allocate([0, 1, 2, 3, 8, 9, 4, 5, 6, 7], plan),
        )

    def test_repack_unknown_server_rejected(self):
        live = LiveAllocation(SlotPlan(16.6, 18, 10), "first-fit")
        live.bulk_admit(range(5))
        with pytest.raises(ValueError, match="no server 3"):
            live.repack_on_failure(3)

    @settings(max_examples=40, deadline=None)
    @given(
        kind=kinds,
        plan=plans,
        n=st.integers(min_value=1, max_value=300),
        which=st.integers(min_value=0, max_value=10),
    )
    def test_repack_orphan_order_is_slot_order(self, kind, plan, n, which):
        live = LiveAllocation(plan, kind)
        live.bulk_admit(range(n))
        server = which % live.n_servers
        before = live.to_allocation()
        expected = [cid for slot in before.servers[server].slots for cid in slot]
        result = live.repack_on_failure(server)
        assert list(result.orphans) == expected
        live.check()


class TestCompactionAndScale:
    def test_heavy_churn_compacts_without_changing_layout(self):
        plan = SlotPlan(16.6, 18, 10)
        live = LiveAllocation(plan, "balanced")
        alive = []
        for wave in range(6):
            start = wave * 100
            live.bulk_admit(range(start, start + 100))
            alive.extend(range(start, start + 100))
            for cid in alive[: len(alive) // 2]:
                live.release(cid)
            alive = alive[len(alive) // 2 :]
            assert live.client_ids() == alive
            assert_identical(
                live.to_allocation(), BalancedPolicy().allocate(alive, plan)
            )
        live.check()

    def test_queries_are_logarithmic_shape(self):
        # Not a benchmark — a structural check that rank_of goes through the
        # Fenwick prefix (O(log n)) rather than scanning the sequence.
        live = LiveAllocation(SlotPlan(16.6, 18, 10), "first-fit")
        live.bulk_admit(range(50_000))
        assert live.rank_of(49_999) == 49_999
        live.release(0)
        assert live.rank_of(49_999) == 49_998
        assert live.placement_of(49_999).server == 49_998 // 180

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="policy must be one of"):
            LiveAllocation(SlotPlan(16.6, 18, 10), "worst-case")
        with pytest.raises(ValueError, match="max_servers"):
            LiveAllocation(SlotPlan(16.6, 18, 10), "first-fit", max_servers=-1)
        with pytest.raises(ValueError, match="policy must be one of"):
            materialize("worst-case", [1], SlotPlan(16.6, 18, 10))


# ---------------------------------------------------------------------------
# the four PlacementPolicy additions: layout semantics + failover
# ---------------------------------------------------------------------------

NEW_KINDS = ("best-fit", "worst-fit", "solar-budget", "swarm-scored")


class TestNewPolicyLayouts:
    @settings(max_examples=60, deadline=None)
    @given(kind=kinds, plan=plans, n=st.integers(min_value=0, max_value=500))
    def test_every_policy_opens_minimal_servers(self, kind, plan, n):
        alloc = POLICIES[kind].allocate(range(n), plan)
        assert alloc.n_servers == math.ceil(n / plan.capacity)
        assert alloc.n_clients == n
        assert all(srv.n_clients > 0 for srv in alloc.servers)

    @settings(max_examples=60, deadline=None)
    @given(plan=plans, n=st.integers(min_value=0, max_value=500))
    def test_best_fit_respects_the_soft_cap_until_overflow(self, plan, n):
        policy = BestFitPolicy(headroom=1)
        soft = max(1, plan.max_parallel - 1)
        alloc = policy.allocate(range(n), plan)
        n_servers = alloc.n_servers
        soft_capacity = n_servers * plan.slots_per_cycle * soft
        occs = [occ for srv in alloc.servers for occ in srv.occupancies]
        if n <= soft_capacity:
            assert all(occ <= soft for occ in occs)
        else:
            # the soft tier is full everywhere before any slot exceeds it
            assert sum(min(occ, soft) for occ in occs) == soft_capacity

    @settings(max_examples=60, deadline=None)
    @given(plan=plans, n=st.integers(min_value=1, max_value=500))
    def test_worst_fit_balances_server_populations(self, plan, n):
        alloc = POLICIES["worst-fit"].allocate(range(n), plan)
        counts = [srv.n_clients for srv in alloc.servers]
        assert max(counts) - min(counts) <= 1
        # round-robin across servers: client 0 on server 0, 1 on server 1, …
        assert alloc.servers[0].slots[0][0] == 0
        if alloc.n_servers > 1:
            assert alloc.servers[1].slots[0][0] == 1

    @settings(max_examples=40, deadline=None)
    @given(plan=plans, n=st.integers(min_value=1, max_value=500))
    def test_solar_budget_fills_sunniest_slots_first(self, plan, n):
        policy = POLICIES["solar-budget"]
        live = LiveAllocation(plan, policy)
        live.bulk_admit(range(n))
        scores = policy.slot_scores(plan)
        assert len(scores) == plan.slots_per_cycle
        # the very first admission lands in a maximum-score slot
        first = live.placement_of(0)
        assert scores[first.slot] == max(scores)
        # within each server, occupied slots are exactly the score-ordered
        # prefix: no sunnier slot is emptier than a dimmer one
        order = {slot: idx for idx, slot in
                 enumerate(sorted(range(plan.slots_per_cycle),
                                  key=lambda k: (-scores[k], k)))}
        for srv in live.to_allocation().servers:
            ordinals = set()
            for cid in (c for slot in srv.slots for c in slot):
                ordinals.add(live.placement_of(cid).slot)
            ranks = sorted(order[o] for o in ordinals)
            assert ranks == list(range(len(ranks)))

    def test_swarm_scored_is_seed_deterministic(self):
        plan = SlotPlan(16.6, 6, 4)
        a = SwarmScoredPolicy(seed=3).allocate(range(40), plan)
        b = SwarmScoredPolicy(seed=3).allocate(range(40), plan)
        assert a.servers == b.servers
        c = SwarmScoredPolicy(seed=4).allocate(range(40), plan)
        assert a.servers != c.servers  # a different trail, a different layout

    def test_swarm_scored_follows_descending_pheromone(self):
        plan = SlotPlan(16.6, 5, 3)
        policy = SwarmScoredPolicy(seed=11)
        live = LiveAllocation(plan, policy)
        live.bulk_admit(range(3 * 5 * 3 * 2))  # six full servers of 15
        scores = policy.pair_scores(live.n_servers, plan)
        seen = []
        for rank in range(0, len(live), plan.max_parallel):
            p = policy.place(rank, len(live), plan)
            seen.append(scores[p.server][p.slot])
        assert seen == sorted(seen, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(kind=st.sampled_from(NEW_KINDS), plan=plans,
           n=st.integers(min_value=1, max_value=400),
           first=st.integers(min_value=0, max_value=10),
           second=st.integers(min_value=0, max_value=10))
    def test_multi_server_failure_repack_stays_canonical(self, kind, plan, n,
                                                         first, second):
        live = LiveAllocation(plan, kind)
        live.bulk_admit(range(n))
        survivors = list(range(n))
        for which in (first, second):
            if live.n_servers == 0:
                break
            result = live.repack_on_failure(which % live.n_servers)
            assert not result.dropped
            gone = set(result.orphans)
            survivors = [c for c in survivors if c not in gone]
            survivors.extend(result.readmitted)
            live.check()
        assert live.client_ids() == survivors
        assert_identical(live.to_allocation(),
                         POLICIES[kind].allocate(survivors, plan))
