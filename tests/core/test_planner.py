"""Tests for the placement planner."""

import pytest

from repro.core.losses import LossConfig
from repro.core.planner import breakeven_grid_weight, plan_placement


class TestPlanPlacement:
    def test_small_fleet_prefers_edge(self):
        """Below the crossover, edge-only wins on total energy."""
        plan = plan_placement(100, objective="total", max_parallels=(10, 35))
        assert plan.best.scenario.is_edge_only

    def test_large_fleet_prefers_cloud_at_35(self):
        """At 630 clients (one full 35-slot server) edge+cloud wins."""
        plan = plan_placement(630, objective="total", models=("svm",), max_parallels=(10, 35))
        assert not plan.best.scenario.is_edge_only
        assert plan.best.scenario.server.max_parallel == 35

    def test_edge_objective_always_prefers_offloading(self):
        """Minimizing solar-side energy: the edge+cloud client (322 J) beats
        the edge-only client (366 J) at any fleet size."""
        for n in (10, 100, 1000):
            plan = plan_placement(n, objective="edge", models=("svm",), max_parallels=(10,))
            assert not plan.best.scenario.is_edge_only

    def test_weighted_objective_interpolates(self):
        free_grid = plan_placement(100, objective="weighted", grid_weight=0.0,
                                   models=("svm",), max_parallels=(35,))
        full_grid = plan_placement(100, objective="weighted", grid_weight=1.0,
                                   models=("svm",), max_parallels=(35,))
        assert not free_grid.best.scenario.is_edge_only
        assert full_grid.best.scenario.is_edge_only  # same as 'total' at n=100

    def test_options_sorted_by_objective(self):
        plan = plan_placement(400, objective="total")
        values = [o.objective_value for o in plan.options]
        assert values == sorted(values)

    def test_losses_change_the_answer(self):
        ideal = plan_placement(630, objective="total", models=("svm",), max_parallels=(35,))
        lossy = plan_placement(630, objective="total", models=("svm",), max_parallels=(35,),
                               losses=LossConfig.all_paper(), seed=1)
        assert not ideal.best.scenario.is_edge_only
        assert lossy.best.scenario.is_edge_only  # cumulative loss B wrecks the cloud

    def test_render(self):
        plan = plan_placement(200, models=("svm",), max_parallels=(10,))
        out = plan.render()
        assert "Placement plan" in out and "Edge (SVM)" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_placement(0)
        with pytest.raises(ValueError):
            plan_placement(10, objective="latency")


class TestBreakevenGridWeight:
    def test_below_crossover_weight_below_one(self):
        """At 100 clients edge+cloud loses on total energy, so the breakeven
        weight must discount grid joules (< 1)."""
        w = breakeven_grid_weight(100)
        assert 0.0 < w < 1.0

    def test_above_crossover_weight_above_one(self):
        """At a full 35-slot server edge+cloud wins even at parity."""
        w = breakeven_grid_weight(630, max_parallel=35)
        assert w > 1.0

    def test_weighted_planner_consistent_with_breakeven(self):
        n = 400
        w_star = breakeven_grid_weight(n, max_parallel=35)
        below = plan_placement(n, objective="weighted", grid_weight=w_star * 0.9,
                               models=("svm",), max_parallels=(35,))
        above = plan_placement(n, objective="weighted", grid_weight=w_star * 1.1,
                               models=("svm",), max_parallels=(35,))
        assert not below.best.scenario.is_edge_only
        assert above.best.scenario.is_edge_only
