"""Tests for the adaptive duty-cycle controller."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveDutyCycle,
    DutyCyclePolicy,
    simulate_adaptive_week,
)
from repro.energy.battery import Battery
from repro.energy.forecast import DiurnalProfileForecaster
from repro.util.units import DAY, HOUR, MINUTE


class TestPolicy:
    def test_defaults_are_paper_menu(self):
        policy = DutyCyclePolicy()
        assert policy.periods[0] == 5 * MINUTE
        assert policy.periods[-1] == 120 * MINUTE

    def test_unsorted_menu_rejected(self):
        with pytest.raises(ValueError):
            DutyCyclePolicy(periods=(600.0, 300.0))

    def test_empty_menu_rejected(self):
        with pytest.raises(ValueError):
            DutyCyclePolicy(periods=())


class TestChoosePeriod:
    def make(self, **policy_kwargs):
        return AdaptiveDutyCycle(DutyCyclePolicy(**policy_kwargs))

    def test_full_battery_bright_forecast_goes_fast(self):
        ctl = self.make()
        battery = Battery(capacity_joules=500_000.0, soc=1.0)
        forecaster = DiurnalProfileForecaster()
        # A generous flat profile: 10 W around the clock.
        for t in np.arange(0, 2 * DAY, 600.0):
            forecaster.observe(float(t), 10.0)
        forecaster.observe(2 * DAY + 1, 10.0)
        assert ctl.choose_period(2 * DAY, battery, forecaster) == 5 * MINUTE

    def test_empty_battery_goes_slow(self):
        ctl = self.make()
        battery = Battery(capacity_joules=50_000.0, soc=0.18)
        forecaster = DiurnalProfileForecaster()  # untrained: zero harvest
        assert ctl.choose_period(0.0, battery, forecaster) == 120 * MINUTE

    def test_monotone_in_battery_level(self):
        """More stored energy never selects a slower period."""
        ctl = self.make()
        forecaster = DiurnalProfileForecaster()
        chosen = []
        for soc in (0.2, 0.4, 0.6, 0.8, 1.0):
            battery = Battery(capacity_joules=200_000.0, soc=soc)
            chosen.append(ctl.choose_period(0.0, battery, forecaster))
        assert all(b <= a for a, b in zip(chosen, chosen[1:]))

    def test_trajectory_check_catches_predawn_minimum(self):
        """A horizon reaching past sunrise must not let morning harvest mask
        a pre-dawn brownout."""
        ctl = self.make(horizon_s=16 * HOUR, reserve_soc=0.1, forecast_discount=1.0)
        # Battery that survives ~6 h of the fast schedule only.
        battery = Battery(capacity_joules=40_000.0, soc=0.9)
        forecaster = DiurnalProfileForecaster()
        # Profile: zero at night, huge after sunrise.
        for t in np.arange(0, 2 * DAY, 600.0):
            tod = t % DAY
            forecaster.observe(float(t), 50.0 if 6 * 3600 < tod < 20 * 3600 else 0.0)
        forecaster.observe(2 * DAY + 1, 0.0)
        # Decision at 18:00: endpoint (10:00 next day) would look rosy.
        choice = ctl.choose_period(2 * DAY + 18 * HOUR, battery, forecaster)
        assert choice > 5 * MINUTE


class TestSimulateWeek:
    def test_adaptive_dominates_fixed_tradeoff(self):
        """The headline: adaptive keeps the slow schedule's full uptime while
        collecting several times its data yield."""
        adaptive = simulate_adaptive_week(controller=AdaptiveDutyCycle(), cloudiness=0.7, seed=11)
        slow = simulate_adaptive_week(fixed_period=120 * MINUTE, cloudiness=0.7, seed=11)
        fast = simulate_adaptive_week(fixed_period=5 * MINUTE, cloudiness=0.7, seed=11)
        assert adaptive.uptime_fraction >= slow.uptime_fraction - 1e-9
        assert adaptive.uptime_fraction > fast.uptime_fraction
        assert adaptive.cycles_completed > 5 * slow.cycles_completed

    def test_adaptive_full_uptime_sunny(self):
        run = simulate_adaptive_week(controller=AdaptiveDutyCycle(), cloudiness=0.3, seed=11)
        assert run.uptime_fraction == 1.0

    def test_period_varies_over_time(self):
        run = simulate_adaptive_week(controller=AdaptiveDutyCycle(), cloudiness=0.5, seed=11)
        assert np.unique(run.periods).size >= 2

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            simulate_adaptive_week()
        with pytest.raises(ValueError):
            simulate_adaptive_week(controller=AdaptiveDutyCycle(), fixed_period=300.0)

    def test_reproducible(self):
        a = simulate_adaptive_week(controller=AdaptiveDutyCycle(), seed=3)
        b = simulate_adaptive_week(controller=AdaptiveDutyCycle(), seed=3)
        np.testing.assert_array_equal(a.periods, b.periods)
        assert a.cycles_completed == b.cycles_completed

    def test_result_metrics(self):
        run = simulate_adaptive_week(fixed_period=30 * MINUTE, seed=3, duration=2 * DAY)
        assert 0.0 <= run.uptime_fraction <= 1.0
        assert run.mean_period == pytest.approx(30 * MINUTE)
        assert len(run.times) == len(run.soc) == len(run.available)
