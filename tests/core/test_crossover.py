"""Tests for crossover analysis."""

import numpy as np
import pytest

from repro.core.calibration import PAPER
from repro.core.crossover import crossover_report, find_crossover, tipping_max_parallel
from repro.core.routines import EDGE_SVM, make_scenario
from repro.core.sweep import sweep_clients


class TestFindCrossover:
    def test_simple_crossover(self):
        n = np.arange(1, 11)
        edge = np.full(10, 5.0)
        cloud = 10.0 - n.astype(float)  # crosses at n=5
        report = find_crossover(n, edge, cloud)
        assert report.first_crossover == 5
        assert report.permanent_crossover == 5
        assert report.max_gap_j == pytest.approx(5.0)  # at n=10: 5 - (10-10)
        assert report.max_gap_at == 10

    def test_edge_always_wins(self):
        n = np.arange(1, 5)
        report = find_crossover(n, np.full(4, 1.0), np.full(4, 2.0))
        assert report.first_crossover is None
        assert report.permanent_crossover is None
        assert report.max_gap_at is None
        assert report.fraction_cloud_better == 0.0

    def test_cloud_always_wins(self):
        n = np.arange(1, 5)
        report = find_crossover(n, np.full(4, 2.0), np.full(4, 1.0))
        assert report.first_crossover == 1
        assert report.permanent_crossover == 1
        assert report.fraction_cloud_better == 1.0

    def test_intermittent_crossing(self):
        n = np.arange(1, 6)
        edge = np.full(5, 5.0)
        cloud = np.array([6.0, 4.0, 6.0, 4.0, 4.0])
        report = find_crossover(n, edge, cloud)
        assert report.first_crossover == 2
        assert report.permanent_crossover == 4

    def test_last_point_worse_means_no_permanent(self):
        n = np.arange(1, 4)
        report = find_crossover(n, np.full(3, 5.0), np.array([4.0, 4.0, 6.0]))
        assert report.permanent_crossover is None

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            find_crossover(np.arange(3), np.zeros(3), np.zeros(2))

    def test_render(self):
        report = find_crossover(np.arange(1, 4), np.full(3, 5.0), np.full(3, 4.0))
        out = report.render()
        assert "first crossover" in out


class TestTipping:
    def test_paper_value(self):
        """§VI-B: 26 clients/slot is the tipping capacity (we measure 27)."""
        tip = tipping_max_parallel(EDGE_SVM, make_scenario("edge+cloud", "svm"))
        assert abs(tip - PAPER.tipping_clients_per_slot) <= 2

    def test_requires_server(self):
        with pytest.raises(ValueError):
            tipping_max_parallel(EDGE_SVM, EDGE_SVM)

    def test_search_limit(self):
        # An edge scenario so cheap the cloud can never match it.
        from repro.core.client import ClientProfile
        from repro.core.routines import Scenario, edge_scenario_tasks

        cheap_client = ClientProfile("cheap", edge_scenario_tasks("svm"), sleep_watts=0.0, period=300.0)
        cheap = Scenario("cheap", cheap_client)
        expensive_cloud = make_scenario("edge+cloud", "svm")
        with pytest.raises(ValueError):
            tipping_max_parallel(cheap, expensive_cloud, search_to=5)


class TestCrossoverReport:
    def test_from_sweeps(self):
        n = np.arange(100, 1200)
        edge = sweep_clients(n, EDGE_SVM)
        cloud = sweep_clients(n, make_scenario("edge+cloud", "svm", max_parallel=35))
        report = crossover_report(edge, cloud)
        # Paper: first crossover ~406 (we measure ~419); max gap at 630.
        assert report.first_crossover is not None
        assert abs(report.first_crossover - PAPER.crossover_clients_at_35) < 50
        assert report.max_gap_at == PAPER.max_gap_clients_at_35

    def test_grid_mismatch_rejected(self):
        a = sweep_clients(np.arange(10, 20), EDGE_SVM)
        b = sweep_clients(np.arange(10, 21), make_scenario("edge+cloud", "svm"))
        with pytest.raises(ValueError):
            crossover_report(a, b)
