"""Tests for the vectorized sweep, pinned against the object-level simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM
from repro.core.simulate import simulate_fleet
from repro.core.sweep import sweep_clients

DETERMINISTIC_LOSSES = [
    LossConfig.none(),
    LossConfig(saturation=SaturationPenalty()),
    LossConfig(transfer=TransferTimePenalty(cumulative=True)),
    LossConfig(transfer=TransferTimePenalty(cumulative=False)),
    LossConfig(saturation=SaturationPenalty(base="active"), transfer=TransferTimePenalty()),
]


class TestAgreementWithSimulator:
    @pytest.mark.parametrize("losses", DETERMINISTIC_LOSSES)
    @pytest.mark.parametrize("max_parallel", [10, 35])
    def test_pointwise_agreement(self, losses, max_parallel):
        """For every deterministic loss combination, the closed-form sweep
        equals the allocation-based simulator at every fleet size."""
        n = np.array([1, 9, 10, 50, 179, 180, 181, 400, 631])
        sweep = sweep_clients(n, EDGE_CLOUD_SVM, losses=losses, max_parallel=max_parallel)
        for i, count in enumerate(n):
            point = simulate_fleet(int(count), EDGE_CLOUD_SVM, losses=losses, max_parallel=max_parallel)
            assert sweep.n_servers[i] == point.n_servers, f"n={count}"
            assert sweep.server_energy_j[i] == pytest.approx(point.server_energy_j, rel=1e-12), f"n={count}"
            assert sweep.edge_energy_j[i] == pytest.approx(point.edge_energy_j, rel=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_agreement_property(self, n):
        sweep = sweep_clients(np.array([n]), EDGE_CLOUD_SVM)
        point = simulate_fleet(n, EDGE_CLOUD_SVM)
        assert sweep.server_energy_j[0] == pytest.approx(point.server_energy_j, rel=1e-12)


class TestSweepSemantics:
    def test_edge_scenario(self):
        n = np.arange(1, 50)
        sweep = sweep_clients(n, EDGE_SVM)
        np.testing.assert_allclose(sweep.total_energy_per_client, 366.3, atol=0.2)
        assert np.all(sweep.n_servers == 0)

    def test_per_client_server_cost_sawtooth(self):
        """Cost per client dips at full servers and jumps when a new one opens."""
        n = np.arange(10, 400)
        sweep = sweep_clients(n, EDGE_CLOUD_SVM, max_parallel=10)
        cost = sweep.server_energy_per_client
        i180 = 180 - 10
        i181 = 181 - 10
        assert cost[i181] > cost[i180]
        # The full server is the cheapest point of its range (macro-sawtooth);
        # micro-bumps at slot boundaries are expected.
        assert cost[i180] == np.min(cost[: i180 + 1])
        # Within a single slot's fill range the cost strictly decreases.
        within_slot = cost[0:9]  # fleet 10..18 share the same 2-slot layout tail
        assert np.all(np.diff(within_slot) < 0)

    def test_zero_fleet_entry(self):
        sweep = sweep_clients(np.array([0, 10]), EDGE_CLOUD_SVM)
        assert sweep.n_servers[0] == 0
        assert sweep.total_energy_per_client[0] == 0.0

    def test_client_loss_statistics(self):
        losses = LossConfig(client_loss=ClientLoss(mean_fraction=0.10, std=2.0))
        n = np.full(3000, 500)
        sweep = sweep_clients(n, EDGE_CLOUD_SVM, losses=losses, seed=3)
        assert sweep.n_lost.mean() == pytest.approx(50.0, rel=0.05)

    def test_client_loss_is_grid_order_stable(self):
        """Loss-C realizations are a function of (seed, fleet size), not of
        the position a size happens to occupy in the grid: permuting the
        grid permutes the results identically."""
        losses = LossConfig(client_loss=ClientLoss(mean_fraction=0.10, std=3.0))
        n = np.array([50, 400, 10, 631, 180, 250, 181, 75])
        rng = np.random.default_rng(0)
        base = sweep_clients(n, EDGE_CLOUD_SVM, losses=losses, seed=7)
        for _ in range(3):
            perm = rng.permutation(n.size)
            shuffled = sweep_clients(n[perm], EDGE_CLOUD_SVM, losses=losses, seed=7)
            assert np.array_equal(shuffled.n_active, base.n_active[perm])
            assert np.array_equal(shuffled.total_energy_j, base.total_energy_j[perm])

    def test_client_loss_ascending_grid_draws_unchanged(self):
        """The canonical draw order *is* grid order for sorted grids, so
        historical realizations (and the fig9 golden) are untouched."""
        losses = LossConfig(client_loss=ClientLoss(mean_fraction=0.10, std=2.0))
        n = np.arange(10, 500, 7)
        sweep = sweep_clients(n, EDGE_CLOUD_SVM, losses=losses, seed=11)
        from repro.util.rng import make_rng

        expected = n - losses.client_loss.draw_lost_array(n, make_rng(11))
        assert np.array_equal(sweep.n_active, expected)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sweep_clients(np.zeros((2, 2), dtype=int), EDGE_SVM)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sweep_clients(np.array([-1]), EDGE_SVM)

    def test_capacity_reported(self):
        sweep = sweep_clients(np.array([10]), EDGE_CLOUD_SVM, max_parallel=35)
        assert sweep.server_capacity == 630
