"""Regression tests for retry accounting (PR 4 bugfix satellite).

Pins the invariants the retry ladder must keep:

* ``RetryPolicy.none()`` (timeout_s=0): a first-attempt failure charges
  *zero* radio-on energy and records *exactly one* attempt — no phantom
  zero-duration ledger entries, no double counting;
* charged radio-on retry time equals ``timeout_attempts × timeout_s``
  exactly, on both the DES and the analytic fault paths;
* the realized ladder wall-clock is the sum of the timeouts plus the
  realized (jittered) backoffs actually incurred.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.routines import make_scenario
from repro.faults import FaultConfig, ServerOutage, run_des_faulty_fleet
from repro.faults.config import LinkBlackout
from repro.faults.fleetsim import run_faulty_fleet
from repro.faults.retry import RetryPolicy


@pytest.fixture(scope="module")
def cloud():
    return make_scenario("edge+cloud", "svm", max_parallel=35)


def _outage_none():
    # Probed: seed 4 below yields 80 fallback cycles over 3 cycles x 40 clients.
    return FaultConfig(
        server_outage=ServerOutage(mtbf_s=1200.0, repair_s=400.0),
        retry=RetryPolicy.none(),
    )


class TestZeroTimeoutDes:
    @pytest.fixture(scope="class")
    def result(self, cloud):
        return run_des_faulty_fleet(
            40, cloud, faults=_outage_none(), n_cycles=3, seed=4
        )

    def test_failures_occurred(self, result):
        assert result.report.cycles_fallback + result.report.cycles_failover > 0

    def test_zero_radio_energy_charged(self, result):
        assert result.report.retry_energy_j == 0.0
        for acc in result.client_accounts:
            assert "send_retry_timeout" not in acc.breakdown()

    def test_exactly_one_attempt_per_cycle(self, result):
        # Outage-only config, fallback on: no crashes, no misses, so every
        # expected cycle makes exactly one attempt, plus one extra per
        # successful failover re-upload.
        rep = result.report
        assert rep.cycles_missed == 0
        assert result.monitor.send_attempts == rep.cycles_expected + rep.cycles_failover

    def test_no_timeout_attempts(self, result):
        assert result.monitor.timeout_attempts == 0


class TestZeroTimeoutAnalytic:
    @pytest.fixture(scope="class")
    def result(self, cloud):
        # Probed: seed 0 yields 80 fallback cycles over 4 cycles x 40 clients.
        return run_faulty_fleet(40, cloud, faults=_outage_none(), n_cycles=4, seed=0)

    def test_failures_occurred(self, result):
        assert result.report.cycles_fallback + result.report.cycles_failover > 0

    def test_zero_radio_energy_charged(self, result):
        assert result.report.retry_energy_j == 0.0
        assert float(result.retry_energy_j.sum()) == 0.0

    def test_exactly_one_attempt_per_cycle(self, result):
        # One attempt per expected cycle (orphans fail instantly, once),
        # plus one extra per successful failover re-upload.
        rep = result.report
        assert rep.cycles_missed == 0
        assert result.monitor.send_attempts == rep.cycles_expected + rep.cycles_failover

    def test_no_timeout_attempts(self, result):
        assert result.monitor.timeout_attempts == 0


class TestChargedRadioTimeInvariant:
    """Charged retry airtime == timeout_attempts × timeout_s, both paths."""

    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_des_radio_time_matches_timeouts(self, cloud, seed):
        fc = FaultConfig(
            server_outage=ServerOutage(mtbf_s=1800.0, repair_s=300.0),
            link_blackout=LinkBlackout(mtbf_s=3600.0, repair_s=120.0),
        )
        r = run_des_faulty_fleet(40, cloud, faults=fc, n_cycles=3, seed=seed)
        charged = sum(
            acc.category_duration("send_retry_timeout")
            for acc in r.client_accounts
            if "send_retry_timeout" in acc.breakdown()
        )
        assert charged == pytest.approx(
            r.monitor.timeout_attempts * fc.retry.timeout_s, rel=1e-12
        )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_analytic_retry_energy_matches_timeouts(self, cloud, seed):
        fc = FaultConfig(server_outage=ServerOutage(mtbf_s=1800.0, repair_s=300.0))
        r = run_faulty_fleet(40, cloud, faults=fc, n_cycles=4, seed=seed)
        send_w = cloud.client.active_tasks.get("send_audio").power
        # The analytic path has no aborted partial sends, so the whole
        # itemized retry energy is timeout airtime.
        assert r.report.retry_energy_j == pytest.approx(
            r.monitor.timeout_attempts * fc.retry.timeout_s * send_w, rel=1e-12
        )


class TestLadderProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        max_retries=st.integers(min_value=0, max_value=4),
        timeout_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        base=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        factor=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        jitter=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_radio_time_is_timeouts_wallclock_adds_backoffs(
        self, max_retries, timeout_s, base, factor, jitter, seed
    ):
        p = RetryPolicy(
            max_retries=max_retries,
            timeout_s=timeout_s,
            backoff_base_s=base,
            backoff_factor=factor,
            jitter=jitter,
        )
        watts = 2.487
        n_attempts = 1 + p.max_retries
        # Charged radio time of a fully exhausted ladder is the timeouts
        # alone — backoffs are slept with the radio off.
        radio_s = p.exhausted_energy_j(watts) / watts
        assert radio_s == pytest.approx(n_attempts * p.timeout_s, rel=1e-12, abs=1e-12)
        # The realized wall-clock is timeouts + the jittered backoffs the
        # run actually incurred, each inside its nominal jitter band and
        # never past the worst-case bound.
        delays = p.delays_s(seed)
        assert len(delays) == p.max_retries
        for i, d in enumerate(delays):
            nominal = p.nominal_delay_s(i)
            assert nominal * (1 - p.jitter) - 1e-9 <= d <= nominal * (1 + p.jitter) + 1e-9
        wall = n_attempts * p.timeout_s + sum(delays)
        assert wall <= p.worst_case_duration_s() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_zero_timeout_first_failure_is_free(self, seed):
        p = RetryPolicy.none()
        assert p.attempt_energy_j(2.487) == 0.0
        assert p.exhausted_energy_j(2.487) == 0.0
        assert p.delays_s(seed) == []
        assert p.worst_case_duration_s() == 0.0
