"""Integration: scheduled link outages + buffering on both fleet simulators.

Covers the orchestration contract of the intermittent-connectivity
subsystem (docs/MODEL.md §11):

* a zero-outage (``always_up``) schedule is the exact identity on both the
  analytic and the event-driven path;
* during an outage the cycle degrades gracefully — payload buffered, local
  inference, send energy refunded, outcome ``buffered`` (still a
  detection) — instead of failing;
* the BLOCK overflow policy converts a full buffer into a skipped cycle;
* burst drains on reconnect deliver the backlog and record delays;
* the per-cycle overhead arrays, the monitor channels and the buffer
  ledger all reconcile (also enforced by ``validate=True``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.faults.config import FaultConfig
from repro.faults.desfaults import run_des_faulty_fleet
from repro.faults.fleetsim import run_faulty_fleet
from repro.network.buffer import BLOCK, BufferSpec
from repro.network.outage import IntervalDist, OutagePattern


def cloud(max_parallel=10, model="svm"):
    return make_scenario("edge+cloud", model, max_parallel=max_parallel)


def outage_faults(pattern=None, cap_cycles=4, policy=None, **kw):
    pattern = pattern or OutagePattern.duty_cycle(4 * 3600.0, 2 * 3600.0)
    buf_kw = {"policy": policy} if policy else {}
    return FaultConfig(
        link_outage=pattern, buffer=BufferSpec.for_cycles(cap_cycles, **buf_kw), **kw
    )


class TestAnalyticPath:
    def test_always_up_is_bit_identical_to_ideal(self):
        scenario = cloud()
        ideal = simulate_fleet(40, scenario)
        res = run_faulty_fleet(
            40,
            scenario,
            faults=outage_faults(OutagePattern.always_up()),
            n_cycles=3,
            seed=0,
            validate=True,
        )
        assert float(res.edge_energy_j[0]) == ideal.edge_energy_j
        assert float(res.server_energy_j[0]) == ideal.server_energy_j
        assert res.report.availability == 1.0
        assert res.buffer_report is not None
        assert res.buffer_report.offered_payloads == 0
        assert res.delivered_data_fraction == 1.0

    @pytest.fixture(scope="class")
    def outage_run(self):
        return run_faulty_fleet(
            60, cloud(), faults=outage_faults(), n_cycles=48, seed=3, validate=True
        )

    def test_buffered_cycles_still_detect(self, outage_run):
        report = outage_run.report
        assert report.cycles_buffered > 0
        assert report.cycles_detected >= report.cycles_buffered
        assert report.cycles_detected + report.cycles_missed == report.cycles_expected
        assert report.availability > 0.9  # degraded, not failed

    def test_buffer_ledger_reconciles_with_outcomes(self, outage_run):
        br = outage_run.buffer_report
        assert br.conserves
        assert outage_run.report.cycles_buffered == (
            br.offered_payloads - br.blocked_payloads
        )
        assert len(br.delays_s) == br.delivered_payloads
        assert br.delivered_payloads > 0  # reconnect bursts actually drained

    def test_overhead_arrays_match_monitor_channels(self, outage_run):
        report = outage_run.report
        assert float(outage_run.buffered_energy_j.sum()) == pytest.approx(
            report.buffered_energy_j, rel=1e-9
        )
        assert float(outage_run.drain_energy_j.sum()) == pytest.approx(
            report.drain_energy_j, rel=1e-9
        )
        assert report.buffered_energy_j > 0
        assert report.drain_energy_j > 0

    def test_delivered_data_fraction_degrades(self, outage_run):
        frac = outage_run.delivered_data_fraction
        assert 0.0 < frac < 1.0

    def test_block_policy_converts_overflow_to_missed(self):
        res = run_faulty_fleet(
            30,
            cloud(),
            faults=outage_faults(
                OutagePattern.duty_cycle(2 * 3600.0, 6 * 3600.0),
                cap_cycles=1,
                policy=BLOCK,
            ),
            n_cycles=48,
            seed=5,
            validate=True,
        )
        assert res.buffer_report.blocked_payloads > 0
        assert res.report.cycles_missed >= res.buffer_report.blocked_payloads
        assert res.buffer_report.conserves

    def test_send_energy_refunded_during_outages(self):
        """A buffered cycle refunds the radio: the edge energy of an
        outage-heavy run is below active-clients x nominal cycle energy
        (net of the local-inference surcharge tracked separately)."""
        scenario = cloud()
        res = run_faulty_fleet(
            30, scenario, faults=outage_faults(), n_cycles=48, seed=3, validate=True
        )
        nominal = res.n_active * scenario.client.cycle_energy
        base_edge = res.edge_energy_j - res.buffered_energy_j - res.drain_energy_j
        assert np.all(base_edge <= nominal + 1e-9)
        assert base_edge.sum() < nominal.sum()  # some sends were refunded

    def test_obs_phase_ledger_reconciles(self):
        from repro.obs import Obs

        obs = Obs()
        run_faulty_fleet(
            30, cloud(), faults=outage_faults(), n_cycles=24, seed=3, obs=obs
        )
        assert obs.ledger.reconciles(rtol=1e-6, atol=1e-9)
        assert obs.ledger.energy_j("infer") > 0.0  # buffered_infer lands in infer
        assert obs.metrics.counter("faults.cycles_buffered").value > 0


class TestDesPath:
    def test_always_up_matches_no_outage_run(self):
        scenario = cloud()
        base = run_des_faulty_fleet(
            20, scenario, faults=FaultConfig(), n_cycles=3, seed=7, validate=True
        )
        idle = run_des_faulty_fleet(
            20,
            scenario,
            faults=outage_faults(OutagePattern.always_up()),
            n_cycles=3,
            seed=7,
            validate=True,
        )
        assert idle.total_energy_j == base.total_energy_j
        assert idle.report.availability == base.report.availability
        assert idle.buffer_report.offered_payloads == 0

    @pytest.fixture(scope="class")
    def des_run(self):
        return run_des_faulty_fleet(
            20,
            cloud(),
            faults=outage_faults(OutagePattern.duty_cycle(3 * 3600.0, 2 * 3600.0)),
            n_cycles=16,
            seed=11,
            validate=True,
        )

    def test_buffered_outcomes_and_conservation(self, des_run):
        report = des_run.report
        assert report.cycles_buffered > 0
        assert report.cycles_detected + report.cycles_missed == report.cycles_expected
        br = des_run.buffer_report
        assert br.conserves
        assert len(br.delays_s) == br.delivered_payloads

    def test_drain_and_inference_hit_the_ledgers(self, des_run):
        from repro.energy.account import EnergyAccount

        fleet = EnergyAccount.sum(des_run.client_accounts, owner="clients")
        cats = set(fleet.categories)
        assert any(c.startswith("buffered_infer") for c in cats)
        if des_run.buffer_report.delivered_payloads > 0:
            assert "send_drain" in cats
            servers = EnergyAccount.sum(des_run.server_accounts, owner="servers")
            assert "receive_drain" in set(servers.categories)

    def test_cohort_collapse_stays_exact_under_outages(self):
        scenario = cloud()
        faults = outage_faults(OutagePattern.duty_cycle(3 * 3600.0, 2 * 3600.0))
        solo = run_des_faulty_fleet(
            24, scenario, faults=faults, n_cycles=8, seed=2, validate=True
        )
        grouped = run_des_faulty_fleet(
            24, scenario, faults=faults, n_cycles=8, seed=2, cohort=True, validate=True
        )
        assert grouped.total_energy_j == pytest.approx(solo.total_energy_j, rel=1e-12)
        assert grouped.report.cycles_buffered == solo.report.cycles_buffered

    def test_block_policy_skips_cycles(self):
        res = run_des_faulty_fleet(
            12,
            cloud(),
            faults=outage_faults(
                OutagePattern(
                    up=IntervalDist.fixed(1800.0),
                    down=IntervalDist.fixed(8 * 3600.0),
                    start_up=True,
                ),
                cap_cycles=1,
                policy=BLOCK,
            ),
            n_cycles=16,
            seed=0,
            validate=True,
        )
        assert res.buffer_report.blocked_payloads > 0
        assert res.report.cycles_missed > 0

    def test_obs_phase_ledger_reconciles(self):
        from repro.obs import Obs

        obs = Obs()
        run_des_faulty_fleet(
            16,
            cloud(),
            faults=outage_faults(OutagePattern.duty_cycle(3 * 3600.0, 2 * 3600.0)),
            n_cycles=12,
            seed=11,
            obs=obs,
        )
        assert obs.ledger.reconciles(rtol=1e-6, atol=1e-9)
        assert obs.ledger.energy_j("other") == 0.0
