"""Tests for the retry/backoff policy and its energy accounting."""

import numpy as np
import pytest

from repro.faults.retry import RetryPolicy


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_none_fails_immediately(self):
        p = RetryPolicy.none()
        assert p.max_retries == 0
        assert p.exhausted_energy_j(2.5) == 0.0
        assert p.worst_case_duration_s() == 0.0


class TestBackoff:
    def test_nominal_delays_are_geometric(self):
        p = RetryPolicy(max_retries=4, backoff_base_s=2.0, backoff_factor=3.0)
        assert [p.nominal_delay_s(i) for i in range(4)] == [2.0, 6.0, 18.0, 54.0]

    def test_jittered_delay_stays_in_band(self):
        p = RetryPolicy(backoff_base_s=10.0, backoff_factor=2.0, jitter=0.25)
        rng = np.random.default_rng(0)
        for i in range(3):
            nominal = p.nominal_delay_s(i)
            for _ in range(50):
                d = p.delay_s(i, rng)
                assert nominal * 0.75 <= d <= nominal * 1.25

    def test_zero_jitter_is_exact(self):
        p = RetryPolicy(backoff_base_s=4.0, jitter=0.0)
        assert p.delay_s(1, np.random.default_rng(0)) == p.nominal_delay_s(1)

    def test_delays_s_covers_full_budget_and_is_seeded(self):
        p = RetryPolicy(max_retries=3)
        assert p.delays_s(7) == p.delays_s(7)
        assert len(p.delays_s(7)) == 3

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().nominal_delay_s(-1)


class TestEnergy:
    def test_attempt_energy_is_radio_on_for_timeout(self):
        p = RetryPolicy(timeout_s=5.0)
        assert p.attempt_energy_j(2.487) == pytest.approx(2.487 * 5.0)

    def test_exhausted_energy_counts_first_try_plus_retries(self):
        p = RetryPolicy(max_retries=3, timeout_s=5.0)
        assert p.exhausted_energy_j(2.0) == pytest.approx(4 * 2.0 * 5.0)

    def test_worst_case_duration_bounds_the_ladder(self):
        p = RetryPolicy(max_retries=2, timeout_s=5.0, backoff_base_s=2.0,
                        backoff_factor=2.0, jitter=0.25)
        # 3 timeouts + (2 + 4) s backoff at +25 % jitter.
        assert p.worst_case_duration_s() == pytest.approx(15.0 + 6.0 * 1.25)
        realized = sum(p.delays_s(3)) + 3 * p.timeout_s
        assert realized <= p.worst_case_duration_s()

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().attempt_energy_j(-1.0)
