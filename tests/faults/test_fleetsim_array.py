"""Vectorized faulty-fleet kernel: bit-identity to the scalar reference.

The array kernel replays the scalar kernel's float operations in the same
order, so *everything* must match exactly — per-cycle ledgers, the monitor
report, attempt counters, and the store-and-forward buffer ledger.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.losses import LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import EDGE_SVM, make_scenario
from repro.faults.config import FaultConfig
from repro.faults.fleetsim import run_faulty_fleet
from repro.faults.fleetsim_array import run_faulty_fleet_array
from repro.faults.spec import ClientCrash, LinkBlackout, LinkDegradation, ServerOutage
from repro.network.buffer import BLOCK, BufferSpec
from repro.network.outage import OutagePattern

CLOUD = make_scenario("edge+cloud", "svm", max_parallel=10)

SERIES = (
    "edge_energy_j", "server_energy_j", "retry_energy_j", "failover_energy_j",
    "fallback_energy_j", "degradation_energy_j", "n_active", "n_servers_down",
    "buffered_energy_j", "drain_energy_j",
)


def assert_faulty_bit_identical(scalar, array):
    for field in SERIES:
        a, s = getattr(array, field), getattr(scalar, field)
        if s is None:
            assert a is None
            continue
        assert np.array_equal(a, s), field
    assert array.report == scalar.report
    assert array.monitor.send_attempts == scalar.monitor.send_attempts
    assert array.monitor.timeout_attempts == scalar.monitor.timeout_attempts
    assert (array.buffer_report is None) == (scalar.buffer_report is None)
    if scalar.buffer_report is not None:
        assert array.buffer_report == scalar.buffer_report
    assert array.total_energy_j == scalar.total_energy_j


def golden_faults():
    return FaultConfig(
        server_outage=ServerOutage(mtbf_s=900.0, repair_s=240.0),
        link_blackout=LinkBlackout(mtbf_s=2400.0, repair_s=60.0),
        client_crash=ClientCrash(mtbf_s=6000.0, repair_s=0.0),
    )


def compare(tag, **kw):
    scalar = run_faulty_fleet(kernel="scalar", **kw)
    array = run_faulty_fleet(kernel="array", **kw)
    assert_faulty_bit_identical(scalar, array)
    return scalar


class TestBitIdentity:
    def test_golden_analytic_config(self):
        res = compare(
            "golden", n_clients=80, scenario=CLOUD, faults=golden_faults(),
            n_cycles=6, seed=3, validate=True,
        )
        assert res.report.cycles_missed > 0  # the config actually faults

    def test_edge_only(self):
        compare(
            "edge", n_clients=40, scenario=EDGE_SVM, faults=golden_faults(),
            n_cycles=6, seed=5, validate=True,
        )

    def test_outage_with_buffer_drain(self):
        faults = FaultConfig(
            link_outage=OutagePattern.duty_cycle(4 * 3600.0, 2 * 3600.0),
            buffer=BufferSpec.for_cycles(4),
        )
        res = compare(
            "outage", n_clients=60, scenario=CLOUD, faults=faults,
            n_cycles=48, seed=3, validate=True,
        )
        assert res.buffer_report.delivered_payloads > 0  # drains exercised

    def test_outage_block_policy(self):
        faults = FaultConfig(
            link_outage=OutagePattern.duty_cycle(4 * 3600.0, 2 * 3600.0),
            buffer=BufferSpec.for_cycles(2, policy=BLOCK),
        )
        compare(
            "block", n_clients=60, scenario=CLOUD, faults=faults,
            n_cycles=48, seed=11, validate=True,
        )

    def test_all_fault_classes_with_losses(self):
        faults = FaultConfig(
            link_outage=OutagePattern.duty_cycle(4 * 3600.0, 2 * 3600.0),
            buffer=BufferSpec.for_cycles(4),
            server_outage=ServerOutage(mtbf_s=900.0, repair_s=240.0),
            link_blackout=LinkBlackout(mtbf_s=2400.0, repair_s=60.0),
            client_crash=ClientCrash(mtbf_s=6000.0, repair_s=0.0),
            link_degradation=LinkDegradation(
                mtbf_s=1800.0, repair_s=300.0, throughput_factor=0.5
            ),
        )
        losses = LossConfig(
            saturation=SaturationPenalty(), transfer=TransferTimePenalty()
        )
        compare(
            "everything", n_clients=50, scenario=CLOUD, faults=faults,
            n_cycles=24, seed=9, losses=losses, validate=True,
        )

    def test_no_fallback_misses(self):
        faults = FaultConfig(
            server_outage=ServerOutage(mtbf_s=600.0, repair_s=600.0), fallback=False
        )
        compare(
            "no-fallback", n_clients=40, scenario=CLOUD, faults=faults,
            n_cycles=10, seed=4, validate=True,
        )

    def test_empty_fleet(self):
        compare(
            "empty", n_clients=0, scenario=CLOUD, faults=golden_faults(),
            n_cycles=3, seed=1, validate=True,
        )

    @settings(max_examples=20, deadline=None)
    @given(
        n_clients=st.integers(min_value=0, max_value=90),
        n_cycles=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        srv_mtbf=st.sampled_from([None, 400.0, 900.0, 3600.0]),
        blk_mtbf=st.sampled_from([None, 1200.0, 2400.0]),
        crash_mtbf=st.sampled_from([None, 3000.0, 6000.0]),
        degr_mtbf=st.sampled_from([None, 1800.0]),
        outage=st.booleans(),
        lossy=st.booleans(),
    )
    def test_property_random_fault_configs(
        self, n_clients, n_cycles, seed, srv_mtbf, blk_mtbf, crash_mtbf,
        degr_mtbf, outage, lossy,
    ):
        kw = {}
        if srv_mtbf:
            kw["server_outage"] = ServerOutage(mtbf_s=srv_mtbf, repair_s=240.0)
        if blk_mtbf:
            kw["link_blackout"] = LinkBlackout(mtbf_s=blk_mtbf, repair_s=60.0)
        if crash_mtbf:
            kw["client_crash"] = ClientCrash(mtbf_s=crash_mtbf, repair_s=0.0)
        if degr_mtbf:
            kw["link_degradation"] = LinkDegradation(
                mtbf_s=degr_mtbf, repair_s=300.0, throughput_factor=0.5
            )
        if outage:
            kw["link_outage"] = OutagePattern.duty_cycle(3 * 3600.0, 2 * 3600.0)
            kw["buffer"] = BufferSpec.for_cycles(3)
        losses = (
            LossConfig(saturation=SaturationPenalty(), transfer=TransferTimePenalty())
            if lossy
            else None
        )
        compare(
            "prop", n_clients=n_clients, scenario=CLOUD, faults=FaultConfig(**kw),
            n_cycles=n_cycles, seed=seed, losses=losses, validate=False,
        )


class TestDispatch:
    def test_auto_routes_to_array_kernel(self, monkeypatch):
        import repro.faults.fleetsim_array as mod

        calls = []
        real = mod.run_faulty_fleet_array
        monkeypatch.setattr(
            mod, "run_faulty_fleet_array",
            lambda *a, **k: calls.append(1) or real(*a, **k),
        )
        run_faulty_fleet(10, CLOUD, faults=golden_faults(), n_cycles=2, seed=0)
        assert calls

    def test_auto_falls_back_for_custom_policy(self):
        from repro.core.allocator import RoundRobinPolicy

        res = run_faulty_fleet(
            12, CLOUD, faults=golden_faults(), n_cycles=2, seed=0,
            policy=RoundRobinPolicy(),
        )
        assert res.n_clients == 12  # scalar path served the request

    def test_array_rejects_custom_policy(self):
        from repro.core.allocator import RoundRobinPolicy

        with pytest.raises(ValueError, match="first-fit"):
            run_faulty_fleet(
                12, CLOUD, faults=golden_faults(), n_cycles=2, seed=0,
                policy=RoundRobinPolicy(), kernel="array",
            )
        with pytest.raises(ValueError, match="first-fit"):
            run_faulty_fleet_array(12, CLOUD, policy=RoundRobinPolicy())

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_faulty_fleet(5, CLOUD, kernel="simd")

    def test_rejects_loss_model_c(self):
        from repro.core.losses import ClientLoss

        losses = LossConfig(client_loss=ClientLoss(0.1, 0.05))
        with pytest.raises(ValueError, match="ClientCrash"):
            run_faulty_fleet_array(5, CLOUD, losses=losses)
