"""Tests for the analytic cycle-level faulty-fleet simulation."""

import numpy as np
import pytest

from repro.core.losses import ClientLoss, LossConfig
from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.faults import (
    ClientCrash,
    FaultConfig,
    LinkBlackout,
    LinkDegradation,
    ServerOutage,
    run_faulty_fleet,
)


@pytest.fixture(scope="module")
def cloud():
    return make_scenario("edge+cloud", "svm", max_parallel=35)


@pytest.fixture(scope="module")
def cloud_small():
    # Two small servers (capacity 36 each) so failover has somewhere to go.
    return make_scenario("edge+cloud", "svm", max_parallel=2)


class TestIdealEquivalence:
    @pytest.mark.parametrize("n_clients", [1, 35, 40, 100])
    def test_faults_off_is_bit_for_bit_ideal(self, cloud, n_clients):
        ideal = simulate_fleet(n_clients, cloud)
        faulty = run_faulty_fleet(n_clients, cloud, FaultConfig.none(), n_cycles=2)
        assert float(faulty.edge_energy_j[0]) == ideal.edge_energy_j
        assert float(faulty.edge_energy_j[1]) == ideal.edge_energy_j
        assert float(faulty.server_energy_j[0]) == ideal.server_energy_j
        assert faulty.report.availability == 1.0
        assert faulty.resilience_energy_j == 0.0

    def test_edge_only_faults_off_is_ideal(self):
        edge = make_scenario("edge", "svm")
        ideal = simulate_fleet(10, edge)
        faulty = run_faulty_fleet(10, edge, FaultConfig.none(), n_cycles=3)
        assert float(faulty.edge_energy_j.sum()) == pytest.approx(3 * ideal.edge_energy_j)
        assert float(faulty.server_energy_j.sum()) == 0.0

    def test_inactive_specs_are_still_ideal(self, cloud):
        # An injector that never fires must not perturb anything.
        ideal = simulate_fleet(40, cloud)
        faulty = run_faulty_fleet(
            40,
            cloud,
            FaultConfig(server_outage=ServerOutage(mtbf_s=float("inf"), repair_s=0.0)),
            n_cycles=2,
            seed=0,
        )
        assert float(faulty.edge_energy_j[0]) == ideal.edge_energy_j

    def test_loss_c_must_be_expressed_as_crash(self, cloud):
        with pytest.raises(ValueError, match="ClientCrash"):
            run_faulty_fleet(
                40,
                cloud,
                FaultConfig.none(),
                losses=LossConfig(client_loss=ClientLoss(0.1, 0.02)),
            )


class TestClientCrash:
    def test_crashes_void_cycles_and_save_edge_energy(self, cloud):
        crash = ClientCrash(mtbf_s=1500.0, repair_s=0.0)  # ~18 % per cycle
        r = run_faulty_fleet(
            50, cloud, FaultConfig(client_crash=crash), n_cycles=20, seed=1
        )
        rep = r.report
        assert rep.cycles_expected == 50 * 20
        assert rep.cycles_missed > 0
        assert rep.cycles_detected + rep.cycles_missed == rep.cycles_expected
        assert r.availability < 1.0
        assert np.all(r.n_active <= 50)
        assert int(r.n_active.sum()) == rep.cycles_detected
        # Crashed clients spend nothing: edge energy scales with survivors.
        per_active = r.edge_energy_j / np.maximum(r.n_active, 1)
        assert np.allclose(per_active, cloud.client.cycle_energy)


class TestServerOutage:
    def test_failover_repacks_into_surviving_server(self, cloud_small):
        # Seed 1 downs servers while a survivor still has spare capacity
        # (probed: 32 failovers, 4 fallbacks over 3 cycles).
        r = run_faulty_fleet(
            40,
            cloud_small,
            FaultConfig(server_outage=ServerOutage(mtbf_s=900.0, repair_s=600.0)),
            n_cycles=3,
            seed=1,
        )
        rep = r.report
        assert rep.cycles_failover > 0
        assert rep.retry_energy_j > 0.0  # orphans burned their retry budget
        assert rep.failover_energy_j > 0.0  # plus one extra upload each
        assert r.availability == 1.0  # failover + fallback cover everyone
        assert rep.cloud_availability < 1.0
        assert int(r.n_servers_down.sum()) > 0

    def test_concurrent_outages_count_each_cycle_once(self, cloud_small):
        # Regression: repacking downed servers one at a time could land an
        # orphan on another server that was itself down the same cycle,
        # recording that client's cycle twice (failover *and* fallback) and
        # pushing availability above 1.0.
        cfg = FaultConfig(server_outage=ServerOutage(mtbf_s=900.0, repair_s=600.0))
        for seed in range(10):
            r = run_faulty_fleet(40, cloud_small, cfg, n_cycles=3, seed=seed)
            rep = r.report
            assert rep.cycles_detected + rep.cycles_missed == rep.cycles_expected
            assert r.availability <= 1.0

    def test_fallback_off_turns_unplaced_into_missed(self, cloud_small):
        cfg = FaultConfig(server_outage=ServerOutage(mtbf_s=900.0, repair_s=600.0))
        with_fb = run_faulty_fleet(40, cloud_small, cfg, n_cycles=3, seed=0)
        without = run_faulty_fleet(
            40,
            cloud_small,
            FaultConfig(server_outage=cfg.server_outage, fallback=False),
            n_cycles=3,
            seed=0,
        )
        assert with_fb.report.cycles_fallback > 0
        assert without.report.cycles_missed == with_fb.report.cycles_fallback
        assert without.availability < 1.0

    def test_downed_server_draws_no_power_while_down(self, cloud):
        # One server, always down: the fleet falls back locally and the
        # server ledger holds only the idle power of its up-fraction.
        r = run_faulty_fleet(
            35,
            cloud,
            FaultConfig(server_outage=ServerOutage(mtbf_s=1e-3, repair_s=1e9)),
            n_cycles=2,
            seed=0,
        )
        assert np.all(r.n_servers_down == 1)
        assert float(r.server_energy_j.sum()) < cloud.server.idle_watts * 2 * r.period
        assert r.report.cloud_availability == 0.0
        assert r.availability == 1.0  # everyone degraded to local inference


class TestLinkFaults:
    def test_degradation_charges_extra_airtime_only(self, cloud):
        r = run_faulty_fleet(
            40,
            cloud,
            FaultConfig(
                link_degradation=LinkDegradation(
                    mtbf_s=600.0, repair_s=1800.0, throughput_factor=0.25
                )
            ),
            n_cycles=4,
            seed=3,
        )
        rep = r.report
        assert rep.degradation_energy_j > 0.0
        assert rep.retry_energy_j == 0.0
        assert r.availability == 1.0  # degraded uploads still land
        send = cloud.client.active_tasks.get("send_audio")
        # Worst case: every client degraded every cycle at 4x stretch.
        assert rep.degradation_energy_j <= 40 * 4 * send.power * cloud.server.transfer_s * 3.0

    def test_blackout_recovers_or_falls_back(self, cloud):
        r = run_faulty_fleet(
            40,
            cloud,
            FaultConfig(
                link_blackout=LinkBlackout(mtbf_s=1200.0, repair_s=30.0),
            ),
            n_cycles=6,
            seed=2,
        )
        rep = r.report
        assert rep.retry_energy_j > 0.0
        assert rep.cycles_retried + rep.cycles_fallback > 0
        assert rep.cycles_detected == rep.cycles_expected  # fallback on


class TestLedgerConsistency:
    def test_itemized_arrays_match_report(self, cloud_small):
        r = run_faulty_fleet(
            40,
            cloud_small,
            FaultConfig(
                server_outage=ServerOutage(mtbf_s=900.0, repair_s=600.0),
                link_blackout=LinkBlackout(mtbf_s=1800.0, repair_s=60.0),
            ),
            n_cycles=4,
            seed=5,
        )
        rep = r.report
        assert float(r.retry_energy_j.sum()) == pytest.approx(rep.retry_energy_j)
        assert float(r.failover_energy_j.sum()) == pytest.approx(rep.failover_energy_j)
        assert float(r.fallback_energy_j.sum()) == pytest.approx(rep.fallback_energy_j)
        assert float(r.degradation_energy_j.sum()) == pytest.approx(
            rep.degradation_energy_j
        )
        # Resilience buckets live inside the edge ledger.
        baseline = r.n_active * cloud_small.client.cycle_energy
        overhead = (
            r.retry_energy_j + r.failover_energy_j + r.fallback_energy_j + r.degradation_energy_j
        )
        assert np.allclose(r.edge_energy_j, baseline + overhead)

    def test_input_validation(self, cloud):
        # n_clients=0 is valid since PR 4 (tests/core/test_zero_fleet.py);
        # only negative fleets and empty horizons are rejected.
        with pytest.raises(ValueError):
            run_faulty_fleet(-1, cloud)
        with pytest.raises(ValueError):
            run_faulty_fleet(10, cloud, n_cycles=0)
