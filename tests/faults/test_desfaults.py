"""Tests for event-driven fault injection on the DES kernel."""

import math

import pytest

from repro.core.dessim import run_des_fleet
from repro.core.losses import ClientLoss, LossConfig
from repro.core.routines import make_scenario
from repro.faults import (
    ClientCrash,
    DesFaultyResult,
    FaultConfig,
    ServerOutage,
    run_des_faulty_fleet,
)


@pytest.fixture(scope="module")
def cloud():
    return make_scenario("edge+cloud", "svm", max_parallel=35)


@pytest.fixture(scope="module")
def cloud_small():
    return make_scenario("edge+cloud", "svm", max_parallel=3)  # capacity 54


class TestValidation:
    def test_edge_only_rejected(self):
        edge = make_scenario("edge", "svm")
        with pytest.raises(ValueError, match="needs a server"):
            run_des_faulty_fleet(10, edge, FaultConfig.none())

    def test_loss_c_rejected(self, cloud):
        with pytest.raises(ValueError, match="client_crash"):
            run_des_faulty_fleet(
                10,
                cloud,
                FaultConfig.none(),
                losses=LossConfig(client_loss=ClientLoss(0.1, 0.02)),
            )


class TestIdealEquivalence:
    def test_empty_schedule_matches_ideal_des(self, cloud):
        # An injector with infinite MTBF compiles to an empty timetable, so
        # the faulty DES must reproduce the ideal DES ledgers exactly.
        ideal = run_des_fleet(12, cloud, n_cycles=2)
        faulty = run_des_faulty_fleet(
            12,
            cloud,
            FaultConfig(server_outage=ServerOutage(mtbf_s=math.inf, repair_s=0.0)),
            n_cycles=2,
            seed=0,
        )
        assert faulty.edge_energy_j == pytest.approx(ideal.edge_energy_j, abs=1e-6)
        assert faulty.server_energy_j == pytest.approx(ideal.server_energy_j, abs=1e-6)
        assert faulty.availability == 1.0
        assert faulty.report.resilience_energy_j == 0.0

    def test_run_des_fleet_delegates_active_faults(self, cloud):
        result = run_des_fleet(
            12,
            cloud,
            n_cycles=1,
            faults=FaultConfig(server_outage=ServerOutage(mtbf_s=600.0, repair_s=300.0)),
            seed=0,
        )
        assert isinstance(result, DesFaultyResult)


class TestMidCycleOutage:
    @pytest.fixture(scope="class")
    def result(self, cloud_small):
        # Seed 4 (probed): the outage lands so that retries, failover to the
        # surviving server AND local fallback all happen in one run.
        return run_des_faulty_fleet(
            60,
            cloud_small,
            FaultConfig(server_outage=ServerOutage(mtbf_s=450.0, repair_s=250.0)),
            n_cycles=2,
            seed=4,
        )

    def test_every_expected_cycle_is_resolved(self, result):
        rep = result.report
        assert rep.cycles_expected == 120
        assert rep.cycles_detected + rep.cycles_missed == rep.cycles_expected

    def test_all_resilience_paths_exercised(self, result):
        rep = result.report
        assert rep.cycles_retried > 0
        assert rep.cycles_failover > 0
        assert rep.cycles_fallback > 0
        assert rep.retry_energy_j > 0.0
        assert rep.failover_energy_j > 0.0
        assert rep.fallback_energy_j > 0.0

    def test_fault_lifecycle_is_logged(self, result):
        log = result.monitor.log
        assert log.count("outage_begin") >= 1
        assert log.count("outage_begin") >= log.count("outage_end") - 1
        assert log.count("failover") == result.report.cycles_failover
        times = [e.time for e in log]
        assert times == sorted(times)

    def test_ledgers_stay_positive_and_plausible(self, result, cloud_small):
        assert result.edge_energy_j > 0.0
        assert result.server_energy_j > 0.0
        # Two servers, two cycles: the ledger can't exceed the always-on
        # receive-power envelope.
        envelope = 2 * 2 * result.period * cloud_small.server.receive_watts
        assert result.server_energy_j < envelope


class TestClientCrashDes:
    def test_crashed_cycles_are_missed(self, cloud):
        r = run_des_faulty_fleet(
            10,
            cloud,
            FaultConfig(client_crash=ClientCrash(mtbf_s=600.0, repair_s=0.0)),
            n_cycles=4,
            seed=1,
        )
        rep = r.report
        assert rep.cycles_missed > 0
        assert r.availability < 1.0
        assert rep.cycles_detected + rep.cycles_missed == 40
        # Zero-repair crashes burn no resilience energy: the cycle is
        # silently skipped (loss-C convention).
        assert rep.retry_energy_j == 0.0
        assert rep.fallback_energy_j == 0.0
