"""Tests for the fault monitor and resilience report."""

import pytest

from repro.faults.monitor import (
    OUTCOME_FALLBACK,
    OUTCOME_MISSED,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    FaultMonitor,
)


class TestCounters:
    def test_outcomes_accumulate_into_report(self):
        mon = FaultMonitor()
        mon.expect_cycle(10)
        mon.record_outcome(OUTCOME_OK, 6)
        mon.record_outcome(OUTCOME_RETRIED, 2)
        mon.record_outcome(OUTCOME_FALLBACK)
        mon.record_outcome(OUTCOME_MISSED)
        rep = mon.report()
        assert rep.cycles_expected == 10
        assert rep.cycles_detected == 9
        assert rep.availability == pytest.approx(0.9)
        assert rep.cloud_availability == pytest.approx(0.8)

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            FaultMonitor().record_outcome("exploded")

    def test_empty_monitor_reports_ideal_availability(self):
        rep = FaultMonitor().report()
        assert rep.availability == 1.0
        assert rep.cloud_availability == 1.0
        assert rep.resilience_energy_j == 0.0


class TestEnergy:
    def test_itemized_charges_sum_to_resilience_energy(self):
        mon = FaultMonitor()
        mon.charge_retry(10.0)
        mon.charge_failover(5.0)
        mon.charge_fallback(2.5)
        mon.charge_degradation(1.5)
        rep = mon.report()
        assert rep.retry_energy_j == 10.0
        assert rep.failover_energy_j == 5.0
        assert rep.fallback_energy_j == 2.5
        assert rep.degradation_energy_j == 1.5
        assert rep.resilience_energy_j == pytest.approx(19.0)

    def test_negative_energy_rejected(self):
        mon = FaultMonitor()
        for charge in (mon.charge_retry, mon.charge_failover,
                       mon.charge_fallback, mon.charge_degradation):
            with pytest.raises(ValueError):
                charge(-1.0)


class TestEventLog:
    def test_fault_events_are_logged_and_counted(self):
        mon = FaultMonitor()
        mon.record_fault(10.0, "outage_begin", server=0)
        mon.record_fault(70.0, "outage_end", server=0)
        rep = mon.report()
        assert rep.n_fault_events == 2
        assert mon.log.count("outage_begin") == 1
        assert [e.kind for e in mon.log] == ["outage_begin", "outage_end"]
