"""Tests for fault windows and fault specifications."""

import math

import numpy as np
import pytest

from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import ClientLoss
from repro.faults.spec import (
    CLIENT_CRASH,
    LINK_DEGRADATION,
    SERVER_OUTAGE,
    ClientCrash,
    FaultWindow,
    LinkBlackout,
    LinkDegradation,
    ServerOutage,
    never,
)


class TestFaultWindow:
    def test_covers_is_half_open(self):
        w = FaultWindow(start=10.0, end=20.0, kind=SERVER_OUTAGE, target=0)
        assert w.covers(10.0)
        assert w.covers(19.999)
        assert not w.covers(20.0)
        assert not w.covers(9.999)

    def test_overlaps_half_open_interval(self):
        w = FaultWindow(start=10.0, end=20.0, kind=SERVER_OUTAGE, target=0)
        assert w.overlaps(0.0, 10.1)
        assert w.overlaps(19.9, 30.0)
        assert not w.overlaps(20.0, 30.0)
        assert not w.overlaps(0.0, 10.0)

    def test_zero_width_window_still_voids_its_cycle(self):
        w = FaultWindow(start=150.0, end=150.0, kind=CLIENT_CRASH, target=3)
        assert w.duration == 0.0
        assert w.overlaps(0.0, 300.0)
        assert not w.overlaps(300.0, 600.0)
        # ... and the instant itself is included on the left edge.
        assert w.overlaps(150.0, 300.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            FaultWindow(start=10.0, end=5.0, kind=SERVER_OUTAGE, target=0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FaultWindow(start=-1.0, end=5.0, kind=SERVER_OUTAGE, target=0)


class TestCompileTarget:
    def test_same_rng_stream_is_deterministic(self):
        spec = ServerOutage(mtbf_s=600.0, repair_s=120.0)
        a = spec.compile_target(0, 7200.0, np.random.default_rng(42))
        b = spec.compile_target(0, 7200.0, np.random.default_rng(42))
        assert a == b
        assert len(a) > 0

    def test_windows_clipped_to_horizon(self):
        spec = ServerOutage(mtbf_s=300.0, repair_s=600.0)
        windows = spec.compile_target(0, 3600.0, np.random.default_rng(7))
        for w in windows:
            assert 0.0 <= w.start < 3600.0
            assert w.end <= 3600.0

    def test_windows_are_disjoint_and_ordered(self):
        spec = ServerOutage(mtbf_s=200.0, repair_s=100.0)
        windows = spec.compile_target(0, 7200.0, np.random.default_rng(3))
        for prev, cur in zip(windows, windows[1:]):
            assert prev.end <= cur.start

    def test_infinite_mtbf_never_fires(self):
        spec = ServerOutage(mtbf_s=math.inf, repair_s=60.0)
        assert spec.compile_target(0, 1e9, np.random.default_rng(0)) == ()
        assert never().compile_target(0, 1e9, np.random.default_rng(0)) == ()

    def test_mtbf_must_be_positive(self):
        with pytest.raises(ValueError):
            ServerOutage(mtbf_s=0.0)
        with pytest.raises(ValueError):
            LinkBlackout(mtbf_s=-10.0)


class TestLinkDegradation:
    def test_throughput_factor_bounds(self):
        with pytest.raises(ValueError):
            LinkDegradation(throughput_factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(throughput_factor=1.5)
        LinkDegradation(throughput_factor=1.0)  # full speed is allowed

    def test_stretch_is_inverse_throughput(self):
        spec = LinkDegradation(throughput_factor=0.25)
        assert spec.stretch_factor() == pytest.approx(4.0)

    def test_compiled_windows_carry_severity(self):
        spec = LinkDegradation(mtbf_s=600.0, repair_s=300.0, throughput_factor=0.5)
        windows = spec.compile_target(0, 7200.0, np.random.default_rng(1))
        assert len(windows) > 0
        for w in windows:
            assert w.kind == LINK_DEGRADATION
            assert w.severity == 0.5


class TestClientCrash:
    def test_zero_repair_windows_are_instantaneous(self):
        spec = ClientCrash(mtbf_s=500.0, repair_s=0.0)
        windows = spec.compile_target(0, 7200.0, np.random.default_rng(5))
        assert len(windows) > 0
        for w in windows:
            assert w.duration == 0.0

    def test_from_client_loss_matches_mean_dropout(self):
        loss = ClientLoss(mean_fraction=0.1, std=0.02)
        crash = ClientCrash.from_client_loss(loss, period=CYCLE_SECONDS)
        assert crash.repair_s == 0.0
        assert crash.miss_probability(CYCLE_SECONDS) == pytest.approx(0.1)

    def test_from_client_loss_zero_fraction_never_fires(self):
        crash = ClientCrash.from_client_loss(ClientLoss(mean_fraction=0.0, std=0.0))
        assert math.isinf(crash.mtbf_s)
        assert crash.miss_probability() == 0.0

    def test_from_client_loss_full_dropout_rejected(self):
        with pytest.raises(ValueError):
            ClientCrash.from_client_loss(ClientLoss(mean_fraction=1.0, std=0.0))

    def test_empirical_miss_rate_matches_probability(self):
        crash = ClientCrash(mtbf_s=-CYCLE_SECONDS / math.log1p(-0.2), repair_s=0.0)
        rng = np.random.default_rng(11)
        n_cycles = 4000
        windows = crash.compile_target(0, n_cycles * CYCLE_SECONDS, rng)
        missed = sum(
            1
            for c in range(n_cycles)
            if any(w.overlaps(c * CYCLE_SECONDS, (c + 1) * CYCLE_SECONDS) for w in windows)
        )
        assert missed / n_cycles == pytest.approx(0.2, abs=0.02)


class TestDescribe:
    def test_describe_mentions_process_parameters(self):
        assert "mtbf=600" in ServerOutage(mtbf_s=600.0, repair_s=60.0).describe()
        assert "off" in never().describe()
