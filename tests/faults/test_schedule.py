"""Tests for compiled fault timetables."""

import pytest

from repro.faults.schedule import FaultSchedule, compile_schedule
from repro.faults.spec import (
    LINK_BLACKOUT,
    SERVER_OUTAGE,
    FaultWindow,
    LinkBlackout,
    ServerOutage,
    never,
)


def _manual_schedule():
    return FaultSchedule(
        horizon_s=600.0,
        windows=(
            FaultWindow(start=50.0, end=150.0, kind=SERVER_OUTAGE, target=0),
            FaultWindow(start=400.0, end=500.0, kind=SERVER_OUTAGE, target=0),
            FaultWindow(start=100.0, end=200.0, kind=LINK_BLACKOUT, target=7),
        ),
    )


class TestQueries:
    def test_windows_for_filters_kind_and_target(self):
        s = _manual_schedule()
        assert len(s.windows_for(SERVER_OUTAGE, 0)) == 2
        assert s.windows_for(SERVER_OUTAGE, 1) == ()
        assert len(s.windows_for(LINK_BLACKOUT, 7)) == 1

    def test_active_window_point_query(self):
        s = _manual_schedule()
        w = s.active_window(SERVER_OUTAGE, 0, 75.0)
        assert w is not None and w.start == 50.0
        assert s.active_window(SERVER_OUTAGE, 0, 150.0) is None  # half-open
        assert s.active_window(SERVER_OUTAGE, 0, 300.0) is None
        assert s.is_down(LINK_BLACKOUT, 7, 100.0)
        assert not s.is_down(LINK_BLACKOUT, 7, 99.9)

    def test_down_during_interval_query(self):
        s = _manual_schedule()
        assert s.down_during(SERVER_OUTAGE, 0, 0.0, 60.0)
        assert not s.down_during(SERVER_OUTAGE, 0, 150.0, 400.0)
        assert s.down_during(SERVER_OUTAGE, 0, 499.0, 600.0)

    def test_downtime_and_counts(self):
        s = _manual_schedule()
        assert s.downtime_s(SERVER_OUTAGE, 0) == pytest.approx(200.0)
        assert s.count(SERVER_OUTAGE) == 2
        assert s.count(LINK_BLACKOUT) == 1
        assert s.targets(SERVER_OUTAGE) == (0,)
        assert s.targets(LINK_BLACKOUT) == (7,)
        assert s.n_windows == 3
        assert s.any_active

    def test_empty_schedule(self):
        s = FaultSchedule.empty(600.0)
        assert not s.any_active
        assert s.active_window(SERVER_OUTAGE, 0, 10.0) is None
        assert not s.down_during(SERVER_OUTAGE, 0, 0.0, 600.0)


class TestCompile:
    def test_integer_seed_is_deterministic(self):
        specs = [ServerOutage(mtbf_s=1800.0, repair_s=300.0)]
        a = compile_schedule(specs, 86400.0, n_servers=3, seed=123)
        b = compile_schedule(specs, 86400.0, n_servers=3, seed=123)
        assert a.windows == b.windows
        assert a.n_windows > 0

    def test_per_kind_streams_are_independent(self):
        # Adding a second fault class must not perturb the first one's draws.
        outage = ServerOutage(mtbf_s=1800.0, repair_s=300.0)
        alone = compile_schedule([outage], 86400.0, n_servers=2, seed=9)
        both = compile_schedule(
            [outage, LinkBlackout(mtbf_s=3600.0, repair_s=60.0)],
            86400.0,
            n_servers=2,
            n_clients=5,
            seed=9,
        )
        for target in range(2):
            assert both.windows_for(SERVER_OUTAGE, target) == alone.windows_for(
                SERVER_OUTAGE, target
            )

    def test_per_target_streams_differ(self):
        s = compile_schedule(
            [ServerOutage(mtbf_s=600.0, repair_s=60.0)], 86400.0, n_servers=2, seed=4
        )
        assert s.windows_for(SERVER_OUTAGE, 0) != s.windows_for(SERVER_OUTAGE, 1)

    def test_server_specs_ignore_client_count(self):
        s = compile_schedule(
            [ServerOutage(mtbf_s=600.0, repair_s=60.0)],
            3600.0,
            n_servers=0,
            n_clients=50,
            seed=1,
        )
        assert s.n_windows == 0

    def test_never_spec_compiles_empty(self):
        s = compile_schedule([never()], 3600.0, n_servers=4, seed=0)
        assert s.n_windows == 0
        assert not s.any_active

    def test_none_specs_are_skipped(self):
        s = compile_schedule([None, never()], 3600.0, n_servers=1, seed=0)
        assert s.n_windows == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            compile_schedule([never()], 3600.0, n_servers=-1)
        with pytest.raises(ValueError):
            compile_schedule([never()], 0.0, n_servers=1)
