"""Tests for the golden-trace harness: differ units + a fast fixture subset.

Only the cheap golden cases are re-run here (tier-1 must stay fast); the
full ``repro-golden --check`` sweep runs in CI's golden-diff job.
"""

from __future__ import annotations

import json

import pytest

from repro.validate.golden import (
    GOLDEN_DIR,
    case_ids,
    check_cases,
    compute_fingerprint,
    diff_fingerprints,
    golden_path,
    hash_floats,
    load_golden,
    main,
    render_drift_report,
    round_sig,
    save_golden,
)

#: Cases cheap enough for tier-1 (each < ~2 s).
FAST_CASES = [
    "table1", "table2", "fig3", "des-ideal", "des-faulty", "faulty-analytic",
    "serve-trace", "ext-policies",
]


class TestCanonicalization:
    def test_round_sig(self):
        assert round_sig(1.23456789012345e-7) == pytest.approx(1.234567890e-7)
        assert round_sig(float("inf")) == float("inf")
        assert round_sig(0.0) == 0.0

    def test_hash_floats_stable_under_last_ulp(self):
        a = [1.0 / 3.0, 2.0 / 3.0]
        b = [round(1.0 / 3.0, 15), round(2.0 / 3.0, 15)]
        assert hash_floats(a) == hash_floats(b)

    def test_hash_floats_changes_on_perturbation(self):
        assert hash_floats([1.0, 2.0]) != hash_floats([1.0, 2.0001])


class TestDiffer:
    def test_identical_is_clean(self):
        fp = {"a": 1.0, "b": {"c": [1, 2, 3]}, "h": "deadbeef"}
        assert diff_fingerprints(fp, fp) == []

    def test_tolerates_relative_noise(self):
        assert diff_fingerprints({"x": 1.0}, {"x": 1.0 + 1e-8}) == []

    def test_flags_scalar_drift(self):
        drifts = diff_fingerprints({"x": 1.0}, {"x": 1.0001})
        assert len(drifts) == 1
        assert drifts[0]["kind"] == "value-drift"
        assert drifts[0]["field"] == "x"
        assert drifts[0]["rel_err"] == pytest.approx(1e-4, rel=1e-2)

    def test_flags_hash_drift_exactly(self):
        drifts = diff_fingerprints({"h": "abc"}, {"h": "abd"})
        assert len(drifts) == 1 and drifts[0]["kind"] == "value-drift"

    def test_flags_missing_and_extra_keys(self):
        drifts = diff_fingerprints({"a": 1, "b": 2}, {"a": 1, "c": 3})
        kinds = sorted(d["kind"] for d in drifts)
        assert kinds == ["extra", "missing"]

    def test_flags_length_change(self):
        drifts = diff_fingerprints({"s": [1, 2]}, {"s": [1, 2, 3]})
        assert drifts[0]["kind"] == "length"

    def test_nested_paths(self):
        drifts = diff_fingerprints({"a": {"b": [1.0, 2.0]}}, {"a": {"b": [1.0, 9.0]}})
        assert drifts[0]["field"] == "a.b[1]"

    def test_bool_not_coerced_to_number(self):
        drifts = diff_fingerprints({"flag": True}, {"flag": 1})
        assert len(drifts) == 1

    def test_render_report(self):
        report = {"case1": diff_fingerprints({"x": 1.0}, {"x": 2.0}), "case2": []}
        text = render_drift_report(report)
        assert "case1" in text and "x" in text
        assert "case2" not in text
        assert render_drift_report({"ok": []}) == "all golden fingerprints match"

    def test_flags_upward_drift(self):
        drifts = diff_fingerprints({"x": 1.0}, {"x": 1.01})
        assert len(drifts) == 1
        assert drifts[0]["expected"] == 1.0 and drifts[0]["actual"] == 1.01

    def test_flags_downward_drift(self):
        drifts = diff_fingerprints({"x": 1.0}, {"x": 0.99})
        assert len(drifts) == 1
        assert drifts[0]["expected"] == 1.0 and drifts[0]["actual"] == 0.99
        assert drifts[0]["rel_err"] == pytest.approx(0.01, rel=1e-2)

    def test_near_zero_expected_uses_atol(self):
        # A stored 0.0 vs sub-atol noise must NOT drift: rtol alone would
        # make the band degenerate (rtol * 0 == 0) and flag any epsilon.
        assert diff_fingerprints({"x": 0.0}, {"x": 5e-10}) == []
        assert diff_fingerprints({"x": 5e-10}, {"x": 0.0}) == []
        # ... while anything above the absolute band still drifts, both ways.
        assert len(diff_fingerprints({"x": 0.0}, {"x": 1e-6})) == 1
        assert len(diff_fingerprints({"x": 1e-6}, {"x": 0.0})) == 1

    def test_worst_offender_named_and_sorted_first(self):
        from repro.validate.golden import worst_offender

        drifts = diff_fingerprints(
            {"small": 1.0, "huge": 1.0, "mid": 1.0},
            {"small": 1.001, "huge": 2.0, "mid": 1.1},
        )
        assert worst_offender(drifts)["field"] == "huge"
        text = render_drift_report({"case": drifts})
        assert "worst: huge" in text.splitlines()[0]
        fields = [ln.split(" ")[3].rstrip(":") for ln in text.splitlines()[1:]]
        assert fields == ["huge", "mid", "small"]

    def test_worst_offender_prefers_structural_drift(self):
        from repro.validate.golden import worst_offender

        drifts = diff_fingerprints({"x": 1.0, "gone": 1}, {"x": 2.0})
        assert worst_offender(drifts)["kind"] == "missing"
        assert worst_offender([]) is None


class TestFixtures:
    def test_every_case_has_a_committed_golden(self):
        for case_id in case_ids():
            path = golden_path(case_id)
            assert path.is_file(), f"missing golden fixture {path}"
            payload = json.loads(path.read_text())
            assert payload["case"] == case_id
            assert "fingerprint" in payload and payload["fingerprint"]

    @pytest.mark.parametrize("case_id", FAST_CASES)
    def test_fast_cases_match_committed_goldens(self, case_id):
        stored = load_golden(case_id)
        fresh = compute_fingerprint(case_id)
        drifts = diff_fingerprints(stored["fingerprint"], fresh)
        assert drifts == [], render_drift_report({case_id: drifts})

    def test_perturbed_golden_fails_check(self, tmp_path):
        """Acceptance check: a perturbed golden scalar must be caught."""
        stored = load_golden("table1")
        fp = json.loads(json.dumps(stored["fingerprint"]))
        quantity = next(iter(fp["comparisons"]))
        fp["comparisons"][quantity]["measured"] *= 1.0001
        save_golden("table1", fp, tmp_path)
        report = check_cases(["table1"], tmp_path)
        assert report["table1"], "perturbation was not detected"
        assert report["table1"][0]["kind"] == "value-drift"

    def test_missing_golden_reported(self, tmp_path):
        report = check_cases(["fig3"], tmp_path)
        assert report["fig3"][0]["kind"] == "missing-golden"

    def test_version_mismatch_rejected(self, tmp_path):
        path = golden_path("table1", tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"case": "table1", "version": 0, "fingerprint": {}}))
        with pytest.raises(ValueError, match="fingerprint version"):
            load_golden("table1", tmp_path)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for case_id in case_ids():
            assert case_id in out

    def test_unknown_only_rejected(self, capsys):
        assert main(["--check", "--only", "nope"]) == 2

    def test_check_only_fast_case(self, capsys, tmp_path):
        report_path = tmp_path / "drift.json"
        assert main(["--check", "--only", "table1", "--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["drifted"] == []
        assert "table1" in payload["cases"]

    def test_update_then_check_round_trip(self, tmp_path):
        assert main(["--update", "--only", "fig3", "--dir", str(tmp_path)]) == 0
        assert main(["--check", "--only", "fig3", "--dir", str(tmp_path)]) == 0

    def test_check_fails_on_drift(self, tmp_path, capsys):
        stored = load_golden("fig3")
        fp = json.loads(json.dumps(stored["fingerprint"]))
        fp["comparisons"][next(iter(fp["comparisons"]))]["measured"] += 0.01
        save_golden("fig3", fp, tmp_path)
        report_path = tmp_path / "drift.json"
        assert main(
            ["--check", "--only", "fig3", "--dir", str(tmp_path), "--report", str(report_path)]
        ) == 1
        assert "value-drift" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["drifted"] == ["fig3"]
        assert payload["worst_offenders"]["fig3"]  # names the worst field

    def test_default_dir_points_at_committed_fixtures(self):
        assert GOLDEN_DIR.name == "golden"
        assert (GOLDEN_DIR / "table1.json").is_file()
