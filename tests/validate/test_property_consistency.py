"""Property tests: the three simulation paths agree on energy.

Randomized fleet configurations drive the analytic cycle model
(:func:`simulate_fleet`), the per-client DES (:func:`run_des_fleet`) and
the cohort-aggregated DES (``cohort=True``) and assert they agree:

* analytic vs DES — relative 1e-9 on edge/server/total energy (both derive
  the same closed-form slot math, one event-driven, one algebraic);
* per-client DES vs cohort DES — *bit-for-bit* equality of every member
  ledger (the cohort collapse is exact, not approximate), faults on or off.

Under active faults the analytic per-cycle path and the event-driven path
make documented granularity compromises, so cross-path equality is only
asserted with faults off; with faults on the per-client/cohort pair must
still match exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dessim import run_des_fleet
from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.faults.config import FaultConfig
from repro.faults.desfaults import run_des_faulty_fleet
from repro.faults.spec import ClientCrash, ServerOutage

REL = 1e-9

fleet_configs = st.fixed_dictionaries(
    {
        "n_clients": st.integers(min_value=1, max_value=60),
        "model": st.sampled_from(["svm", "cnn"]),
        "max_parallel": st.integers(min_value=2, max_value=12),
        "n_cycles": st.integers(min_value=1, max_value=3),
    }
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=fleet_configs)
def test_analytic_vs_des_vs_cohort_ideal(cfg):
    scenario = make_scenario("edge+cloud", cfg["model"], max_parallel=cfg["max_parallel"])
    analytic = simulate_fleet(cfg["n_clients"], scenario)
    des = run_des_fleet(cfg["n_clients"], scenario, n_cycles=cfg["n_cycles"], validate=True)
    cohort = run_des_fleet(
        cfg["n_clients"], scenario, n_cycles=cfg["n_cycles"], cohort=True, validate=True
    )

    # Analytic vs per-client DES: per-cycle energies agree to numerics.
    assert des.edge_energy_j / cfg["n_cycles"] == pytest.approx(
        analytic.edge_energy_j, rel=REL
    )
    assert des.server_energy_j / cfg["n_cycles"] == pytest.approx(
        analytic.server_energy_j, rel=REL
    )

    # Per-client vs cohort DES: every member ledger is bit-for-bit identical.
    assert cohort.n_clients == des.n_clients
    expanded = cohort.expand_client_accounts()
    assert len(expanded) == len(des.client_accounts)
    for per_client, member in zip(des.client_accounts, expanded):
        assert per_client.breakdown() == member.breakdown()
    assert cohort.server_energy_j == pytest.approx(des.server_energy_j, rel=REL)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    cfg=fleet_configs,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf=st.floats(min_value=600.0, max_value=7200.0),
)
def test_per_client_vs_cohort_des_with_faults(cfg, seed, mtbf):
    scenario = make_scenario("edge+cloud", cfg["model"], max_parallel=cfg["max_parallel"])
    faults = FaultConfig(
        server_outage=ServerOutage(mtbf_s=mtbf, repair_s=240.0),
        client_crash=ClientCrash(mtbf_s=4.0 * mtbf, repair_s=0.0),
    )
    per_client = run_des_faulty_fleet(
        cfg["n_clients"], scenario, faults=faults, n_cycles=cfg["n_cycles"], seed=seed,
        validate=True,
    )
    cohort = run_des_faulty_fleet(
        cfg["n_clients"], scenario, faults=faults, n_cycles=cfg["n_cycles"], seed=seed,
        cohort=True, validate=True,
    )

    # Same fault timetable, same outcomes, bit-identical member ledgers.
    assert cohort.report == per_client.report
    expanded = cohort.expand_client_accounts()
    assert len(expanded) == len(per_client.client_accounts)
    for a, b in zip(per_client.client_accounts, expanded):
        assert a.breakdown() == b.breakdown()
    assert cohort.server_energy_j == per_client.server_energy_j


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_clients=st.integers(min_value=1, max_value=40),
    max_parallel=st.integers(min_value=2, max_value=10),
)
def test_faults_off_faulty_path_equals_ideal(n_clients, max_parallel):
    """A faulty run with no active injectors reproduces the ideal energies."""
    scenario = make_scenario("edge+cloud", "svm", max_parallel=max_parallel)
    ideal = run_des_fleet(n_clients, scenario, n_cycles=2, validate=True)
    analytic = simulate_fleet(n_clients, scenario)
    assert ideal.edge_energy_j / 2 == pytest.approx(analytic.edge_energy_j, rel=REL)
    assert ideal.server_energy_j / 2 == pytest.approx(analytic.server_energy_j, rel=REL)
