"""Golden pins against the paper's published numbers.

These are *paper* regressions, not self-consistency checks: each assertion
compares a measured quantity against the value printed in the source paper
(Tables I/II, Figure 3) with an explicit tolerance.  If one of these moves,
the model no longer reproduces the publication — that is never a
"regenerate the golden" situation (see docs/TESTING.md).
"""

from __future__ import annotations

import pytest

from repro.core.calibration import CYCLE_SECONDS, PAPER
from repro.experiments.registry import run_experiment


def _comparisons(result):
    return {c.quantity: c for c in result.comparisons}


class TestTableI:
    """Table I: the edge routine — 89 s, 2.14 W, 190.1 J — and per-task split."""

    def test_routine_calibration_matches_paper(self):
        assert PAPER.routine.duration_s == 89.0
        assert PAPER.routine.energy_j == pytest.approx(190.1, abs=0.05)
        assert PAPER.routine.power_w == pytest.approx(2.14, abs=0.005)
        assert CYCLE_SECONDS == 300.0

    def test_table1_totals_within_half_percent(self):
        result = run_experiment("table1")
        for comparison in result.comparisons:
            assert comparison.measured_value == pytest.approx(
                comparison.paper_value, rel=5e-3
            ), comparison.quantity

    def test_edge_cycle_energy_pins(self):
        result = run_experiment("table1")
        by_quantity = _comparisons(result)
        svm = next(c for q, c in by_quantity.items() if "svm" in q.lower())
        assert svm.paper_value == pytest.approx(PAPER.edge_svm_total_j)
        assert svm.measured_value == pytest.approx(366.3, rel=2e-3)


class TestTableII:
    """Table II: edge+cloud split — light client, heavy (shared) server."""

    def test_table2_totals_within_one_percent(self):
        result = run_experiment("table2")
        for comparison in result.comparisons:
            assert comparison.measured_value == pytest.approx(
                comparison.paper_value, rel=1e-2
            ), comparison.quantity

    def test_client_side_pin(self):
        result = run_experiment("table2")
        client = next(
            c for c in result.comparisons if c.quantity == "edge+cloud (svm) edge total (J)"
        )
        assert client.paper_value == pytest.approx(PAPER.edge_cloud_client_j)
        assert client.measured_value == pytest.approx(322.0, rel=1e-2)


class TestFig3:
    """Figure 3: 1.19 W at the 5-minute period, converging to the 0.62 W floor."""

    def test_power_at_5min(self):
        result = run_experiment("fig3")
        powers = result.series["average_power_w"]
        periods = result.series["period_s"]
        assert periods[0] == pytest.approx(300.0)
        assert powers[0] == pytest.approx(1.19, rel=2e-2)

    def test_converges_to_sleep_floor(self):
        result = run_experiment("fig3")
        powers = result.series["average_power_w"]
        assert powers[-1] == pytest.approx(0.62, rel=0.10)
        assert powers[-1] >= PAPER.sleep_watts  # floor is the sleep draw

    def test_monotone_decrease(self):
        from repro.validate import check_monotone_nonincreasing

        result = run_experiment("fig3")
        check_monotone_nonincreasing(
            result.series["average_power_w"], invariant="fig3-monotone"
        )

    def test_within_tolerance_flags_set(self):
        result = run_experiment("fig3")
        for comparison in result.comparisons:
            assert comparison.within_tolerance is True, comparison.quantity
