"""Unit tests for the invariant-checking layer (repro.validate)."""

from __future__ import annotations

import math

import pytest

from repro.core.cohort import check_partition
from repro.core.dessim import run_des_fleet
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM, make_scenario
from repro.core.server import SlotPlan
from repro.core.allocator import Allocation, ServerAssignment
from repro.energy.account import EnergyAccount
from repro.validate import (
    InvariantViolation,
    battery_delta,
    check_monotone_nonincreasing,
    checks_run,
    reset_check_count,
    resolve,
    set_validation,
    validation,
    validation_enabled,
)
from repro.validate.invariants import (
    AvailabilityBounds,
    CohortPartition,
    LedgerConservation,
    run_checkers,
    validate_des_run,
)


class TestInvariantViolation:
    def test_is_value_error(self):
        exc = InvariantViolation("energy-conservation", "boom")
        assert isinstance(exc, ValueError)

    def test_message_carries_name_and_context(self):
        exc = InvariantViolation("slot-occupancy", "too full", {"server": 3})
        assert exc.invariant == "slot-occupancy"
        assert "slot-occupancy" in str(exc)
        assert "too full" in str(exc)
        assert "server=3" in str(exc)
        assert exc.context == {"server": 3}

    def test_with_context_merges(self):
        exc = InvariantViolation("x", "m", {"a": 1}).with_context(b=2)
        assert exc.context == {"a": 1, "b": 2}
        assert exc.invariant == "x"


class TestValidationState:
    def test_default_off(self):
        assert validation_enabled() is False
        assert resolve(None) is False

    def test_explicit_wins_over_global(self):
        with validation(True):
            assert resolve(False) is False
        assert resolve(True) is True

    def test_context_manager_restores(self):
        assert not validation_enabled()
        with validation(True):
            assert validation_enabled()
            with validation(False):
                assert not validation_enabled()
            assert validation_enabled()
        assert not validation_enabled()

    def test_set_validation_round_trip(self):
        set_validation(True)
        try:
            assert validation_enabled()
            assert resolve(None) is True
        finally:
            set_validation(False)

    def test_check_counter(self):
        reset_check_count()
        assert checks_run() == 0
        run_checkers(object(), [], {})
        assert checks_run() == 0
        with validation(True):
            run_des_fleet(5, EDGE_SVM, n_cycles=1)
        assert checks_run() > 0


class TestBatteryDelta:
    def test_replay_matches_total(self):
        acc = EnergyAccount(owner="dev")
        acc.charge("collect", 12.5, 3.0)
        acc.charge("sleep", 100.0, 250.0)
        assert battery_delta(acc) == pytest.approx(acc.total, rel=1e-12)

    def test_empty_account(self):
        assert battery_delta(EnergyAccount(owner="idle")) == 0.0


class TestLedgerConservation:
    def _result(self):
        return run_des_fleet(4, EDGE_CLOUD_SVM, n_cycles=1)

    def test_clean_run_passes(self):
        result = self._result()
        run_checkers(result, [LedgerConservation("client_accounts")], {})

    def test_negative_category_raises(self):
        result = self._result()
        result.client_accounts[0]._totals["sleep"] = -1.0
        with pytest.raises(InvariantViolation) as exc:
            run_checkers(result, [LedgerConservation("client_accounts")], {})
        assert exc.value.invariant == "energy-conservation"

    def test_nan_category_raises(self):
        result = self._result()
        result.client_accounts[1]._totals["collect"] = float("nan")
        with pytest.raises(InvariantViolation):
            run_checkers(result, [LedgerConservation("client_accounts")], {})

    def test_corrupted_ledger_trips_validate_des_run(self):
        """Acceptance check: a deliberately corrupted energy ledger raises."""
        result = self._result()
        result.client_accounts[0]._totals["phantom_task"] = 42.0
        with pytest.raises(InvariantViolation):
            validate_des_run(result, scenario=EDGE_CLOUD_SVM)


class TestSlotOccupancy:
    def _plan(self):
        return SlotPlan.for_server(EDGE_CLOUD_SVM.server, 300.0)

    def test_overfull_slot_raises_structured(self):
        plan = self._plan()
        too_many = tuple(range(plan.max_parallel + 1))
        alloc = Allocation((ServerAssignment(0, (too_many,)),), plan)
        with pytest.raises(InvariantViolation) as exc:
            alloc.validate()
        assert exc.value.invariant == "slot-occupancy"
        assert "max_parallel" in str(exc.value)

    def test_duplicate_client_raises_structured(self):
        plan = self._plan()
        alloc = Allocation((ServerAssignment(0, ((7,), (7,))),), plan)
        with pytest.raises(InvariantViolation, match="client 7 allocated twice"):
            alloc.validate()


class TestCohortPartition:
    def test_check_partition_accepts_partition(self):
        check_partition([(0, 2), (1,), (3, 4)], 5)

    def test_check_partition_rejects_duplicate(self):
        with pytest.raises(ValueError, match="two cohorts"):
            check_partition([(0, 1), (1, 2)], 3)

    def test_check_partition_rejects_gap(self):
        with pytest.raises(ValueError, match="without a cohort"):
            check_partition([(0,), (2,)], 3)

    def test_check_partition_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            check_partition([(0, 5)], 3)

    def test_checker_on_cohort_run(self):
        result = run_des_fleet(50, EDGE_CLOUD_SVM, n_cycles=1, cohort=True)
        run_checkers(result, [CohortPartition()], {})

    def test_checker_rejects_bad_multiplicity(self):
        result = run_des_fleet(50, EDGE_CLOUD_SVM, n_cycles=1, cohort=True)
        bad = result.client_multiplicities[:-1] + (result.client_multiplicities[-1] + 1,)
        object.__setattr__(result, "client_multiplicities", bad)
        with pytest.raises(InvariantViolation) as exc:
            run_checkers(result, [CohortPartition()], {})
        assert exc.value.invariant == "cohort-partition"


class TestAvailabilityBounds:
    def test_faulty_run_passes(self):
        from repro.faults.config import FaultConfig
        from repro.faults.fleetsim import run_faulty_fleet
        from repro.faults.spec import ServerOutage

        scenario = make_scenario("edge+cloud", "svm", max_parallel=10)
        faults = FaultConfig(server_outage=ServerOutage(mtbf_s=1200.0, repair_s=300.0))
        result = run_faulty_fleet(30, scenario, faults=faults, n_cycles=3, seed=1)
        run_checkers(result, [AvailabilityBounds()], {"expected_cycles": 90})

    def test_wrong_expected_cycles_raises(self):
        from repro.faults.config import FaultConfig
        from repro.faults.fleetsim import run_faulty_fleet
        from repro.faults.spec import ServerOutage

        scenario = make_scenario("edge+cloud", "svm", max_parallel=10)
        faults = FaultConfig(server_outage=ServerOutage(mtbf_s=1200.0, repair_s=300.0))
        result = run_faulty_fleet(30, scenario, faults=faults, n_cycles=3, seed=1)
        with pytest.raises(InvariantViolation) as exc:
            run_checkers(result, [AvailabilityBounds()], {"expected_cycles": 91})
        assert exc.value.invariant == "availability-bounds"


class TestMonotone:
    def test_accepts_non_increasing(self):
        check_monotone_nonincreasing([1.0, 1.0, 0.9, 0.5])

    def test_rejects_increase(self):
        with pytest.raises(InvariantViolation, match="increases at index 1"):
            check_monotone_nonincreasing([1.0, 0.8, 0.9])


class TestSweepValidation:
    def test_sweep_cross_check_catches_drift(self):
        import numpy as np

        from repro.core.sweep import sweep_clients
        from repro.validate.invariants import validate_sweep_result

        sweep = sweep_clients(range(10, 200, 10), EDGE_CLOUD_SVM)
        validate_sweep_result(sweep, EDGE_CLOUD_SVM, 300.0)
        tampered = np.array(sweep.server_energy_j)
        tampered[0] *= 1.001
        object.__setattr__(sweep, "server_energy_j", tampered)
        with pytest.raises(InvariantViolation) as exc:
            validate_sweep_result(sweep, EDGE_CLOUD_SVM, 300.0)
        assert exc.value.invariant == "sweep-cross-check"


class TestEngineChecks:
    def test_drained_property(self):
        from repro.des.engine import Engine

        eng = Engine()
        assert eng.drained
        eng.timeout(5.0)
        assert not eng.drained
        eng.run()
        assert eng.drained

    def test_check_clock_runs_clean(self):
        from repro.des.engine import Engine

        eng = Engine(check_clock=True)
        fired = []

        def proc():
            yield eng.timeout(1.0)
            fired.append(eng.now)
            yield eng.timeout(2.0)
            fired.append(eng.now)

        eng.process(proc())
        eng.run()
        assert fired == [1.0, 3.0]

    def test_clock_monotonicity_checker_flags_undrained_engine(self):
        from repro.des.engine import Engine
        from repro.validate.invariants import ClockMonotonicity

        eng = Engine()
        eng.timeout(10.0)
        with pytest.raises(InvariantViolation) as exc:
            run_checkers(object(), [ClockMonotonicity()], {"engine": eng})
        assert exc.value.invariant == "clock-monotonicity"


def test_validated_paths_report_zero_violations():
    """Acceptance check: all checkers enabled, zero violations on real runs."""
    from repro.faults.config import FaultConfig
    from repro.faults.desfaults import run_des_faulty_fleet
    from repro.faults.spec import ServerOutage

    reset_check_count()
    with validation(True):
        run_des_fleet(20, EDGE_CLOUD_SVM, n_cycles=2)
        run_des_fleet(60, EDGE_CLOUD_SVM, n_cycles=2, cohort=True)
        scenario = make_scenario("edge+cloud", "svm", max_parallel=10)
        run_des_faulty_fleet(
            24,
            scenario,
            faults=FaultConfig(server_outage=ServerOutage(mtbf_s=900.0, repair_s=200.0)),
            n_cycles=2,
            seed=11,
        )
    assert checks_run() >= 18  # 7 + 7 + 6 checkers minimum across the three runs
