"""Calendar-queue backend: exact heap-order equivalence (repro.des.wheel)."""

from __future__ import annotations

import heapq
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.engine import Engine, SimulationError
from repro.des.wheel import CalendarQueue, _MIN_BUCKETS
from repro.resilience.snapshot import restore_engine, snapshot_engine

# ---------------------------------------------------------------------------
# queue data structure
# ---------------------------------------------------------------------------


def _drain_both(cq, heap):
    while heap:
        assert cq.pop() == heapq.heappop(heap)
    assert len(cq) == 0
    with pytest.raises(IndexError):
        cq.pop()


class TestCalendarQueue:
    def test_pops_in_full_tuple_order(self):
        cq = CalendarQueue()
        heap = []
        for seq, (t, prio) in enumerate(
            [(5.0, 1), (5.0, 0), (1.0, 2), (5.0, 1), (0.0, 1), (2.5, 1)]
        ):
            entry = (t, prio, seq, None)
            cq.push(entry)
            heapq.heappush(heap, entry)
        _drain_both(cq, heap)

    def test_same_time_ties_break_on_priority_then_seq(self):
        cq = CalendarQueue()
        entries = [(3.0, p, s, None) for s, p in enumerate([2, 0, 1, 0, 2, 1])]
        for e in entries:
            cq.push(e)
        assert [cq.pop() for _ in range(len(entries))] == sorted(entries)

    def test_far_future_entry_uses_direct_search(self):
        # One entry many years beyond the scan window: the year scan misses,
        # the long-jump fallback must find it and re-anchor the calendar.
        cq = CalendarQueue(width=1.0, n_buckets=8)
        cq.push((1e9, 1, 0, None))
        assert cq.min_time() == 1e9
        assert cq.pop() == (1e9, 1, 0, None)
        # Re-anchored: a subsequent nearby push pops normally.
        cq.push((1e9 + 0.5, 1, 1, None))
        assert cq.pop() == (1e9 + 0.5, 1, 1, None)

    def test_grow_and_shrink_preserve_order(self):
        cq = CalendarQueue()
        heap = []
        rng = random.Random(7)
        for seq in range(500):  # forces several grows
            entry = (rng.random() * 1e4, rng.randrange(3), seq, None)
            cq.push(entry)
            heapq.heappush(heap, entry)
        assert cq._n_buckets > _MIN_BUCKETS
        _drain_both(cq, heap)  # forces shrinks on the way down
        assert cq._n_buckets == _MIN_BUCKETS

    def test_min_time_is_non_destructive(self):
        cq = CalendarQueue()
        cq.push((4.0, 1, 0, None))
        cq.push((2.0, 1, 1, None))
        assert cq.min_time() == 2.0
        assert len(cq) == 2
        assert cq.pop()[0] == 2.0

    def test_min_time_empty_is_inf(self):
        assert CalendarQueue().min_time() == float("inf")

    def test_sorted_entries_ascending(self):
        cq = CalendarQueue()
        entries = [(float(t), 1, s, None) for s, t in enumerate([9, 3, 7, 1, 5])]
        for e in entries:
            cq.push(e)
        assert cq.sorted_entries() == tuple(sorted(entries))
        assert len(cq) == 5  # non-destructive

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(n_buckets=0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
                st.sampled_from([0, 1, 2]),
                st.booleans(),
            ),
            max_size=80,
        )
    )
    def test_interleaved_push_pop_matches_heapq(self, ops):
        """Monotone interleavings (the engine's contract) pop in heapq order."""
        cq = CalendarQueue()
        heap = []
        now, seq = 0.0, 0
        for delay, prio, do_pop in ops:
            if do_pop and heap:
                a, b = cq.pop(), heapq.heappop(heap)
                assert a == b
                now = a[0]
            else:
                entry = (now + delay, prio, seq, None)
                seq += 1
                cq.push(entry)
                heapq.heappush(heap, entry)
        _drain_both(cq, heap)


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


def _workload(eng, log):
    """A branching workload with ties, zero delays, and a cancellation."""

    def proc(name, delays):
        for d in delays:
            yield eng.timeout(d)
            log.append((eng.now, name))

    eng.process(proc("a", [3.0, 0.0, 2.0, 7.5]))
    eng.process(proc("b", [3.0, 2.0, 0.0, 1.25]))
    eng.process(proc("c", [0.5] * 8))
    doomed = eng.timeout(4.0, "doomed")
    doomed.callbacks.append(lambda e: log.append((eng.now, "doomed")))
    doomed.cancel()
    late = eng.timeout(6.0, "late")
    late.callbacks.append(lambda e: log.append((eng.now, "late")))


def _run_trace(queue, until=None, **kw):
    eng = Engine(queue=queue, **kw)
    log = []
    _workload(eng, log)
    eng.run(until=until)
    return eng, log


class TestEngineWheel:
    def test_queue_kind(self):
        assert Engine().queue_kind == "heap"
        assert Engine(queue="wheel").queue_kind == "wheel"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown queue backend"):
            Engine(queue="ring")

    @pytest.mark.parametrize("kw", [{}, {"pool_timeouts": True}, {"check_clock": True}])
    def test_trace_identical_to_heap(self, kw):
        eng_h, log_h = _run_trace("heap", **kw)
        eng_w, log_w = _run_trace("wheel", **kw)
        assert log_w == log_h
        assert eng_w.now == eng_h.now
        assert eng_w.events_fired == eng_h.events_fired

    def test_until_bound_pushes_entry_back(self):
        eng_h, log_h = _run_trace("heap", until=4.0)
        eng_w, log_w = _run_trace("wheel", until=4.0)
        assert log_w == log_h
        assert eng_w.now == eng_h.now == 4.0
        assert not eng_w.drained
        # The pushed-back entry kept its seq: resuming stays identical.
        eng_h.run()
        eng_w.run()
        assert log_w == log_h

    def test_step_and_peek(self):
        eng = Engine(queue="wheel")
        seen = []
        eng.timeout(1.0).cancel()
        live = eng.timeout(2.0, "live")
        live.callbacks.append(lambda e: seen.append(e.value))
        assert eng.peek() == 1.0  # may name the cancelled entry, like the heap
        eng.step()
        assert seen == ["live"] and eng.now == 2.0
        assert eng.peek() == float("inf")
        with pytest.raises(SimulationError):
            eng.step()

    def test_run_until_in_past_rejected(self):
        eng = Engine(queue="wheel", start_time=10.0)
        with pytest.raises(SimulationError):
            eng.run(until=5.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_random_process_traces_hash_identical(self, proc_delays):
        def run(queue):
            eng = Engine(queue=queue)
            log = []

            def proc(name, delays):
                for d in delays:
                    yield eng.timeout(d)
                    log.append((eng.now, name))

            for i, delays in enumerate(proc_delays):
                eng.process(proc(i, delays))
            eng.run()
            return tuple(log)

        assert hash(run("wheel")) == hash(run("heap"))
        assert run("wheel") == run("heap")


# ---------------------------------------------------------------------------
# snapshot/restore
# ---------------------------------------------------------------------------


class TestWheelSnapshot:
    def test_round_trip_mid_run(self):
        eng = Engine(queue="wheel")
        for i, d in enumerate([1.0, 5.0, 3.0, 5.0, 9.0]):
            eng.timeout(d, i)
        eng.run(until=2.0)
        snap = snapshot_engine(eng)
        assert snap["queue"] == "wheel"

        restored = restore_engine(snap)
        assert restored.queue_kind == "wheel"
        keys = lambda e: [(t, p, s) for t, p, s, _ in e.pending_entries()]  # noqa: E731
        assert keys(restored) == keys(eng)

        # Both drain the same tail in the same order.
        def drain(e):
            out = []
            while not e.drained:
                e.step()
                out.append(e.now)
            return out

        assert drain(restored) == drain(eng)

    def test_wheel_snapshot_restores_into_heap_schema(self):
        # A legacy snapshot without the "queue" field restores as heap.
        eng = Engine()
        eng.timeout(1.0)
        snap = snapshot_engine(eng)
        del snap["queue"]
        assert restore_engine(snap).queue_kind == "heap"
