"""Tests for the Wait/Timeout aliases and misc kernel utilities."""

from repro.des.engine import Engine
from repro.des.process import Timeout, Wait


class TestAliases:
    def test_wait_is_timeout(self):
        eng = Engine()
        marks = []

        def proc():
            yield Wait(eng, 2.0)
            marks.append(eng.now)
            yield Timeout(eng, 3.0, value="v")
            marks.append(eng.now)

        eng.process(proc())
        eng.run()
        assert marks == [2.0, 5.0]

    def test_timeout_value_passthrough(self):
        eng = Engine()
        got = []

        def proc():
            value = yield Timeout(eng, 1.0, value="honey")
            got.append(value)

        eng.process(proc())
        eng.run()
        assert got == ["honey"]
