"""Tests for DES monitors and state timelines."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.des.monitor import Monitor, StateTimeline


class TestMonitor:
    def test_record_and_arrays(self):
        m = Monitor("power")
        m.record(0.0, 1.0)
        m.record(1.0, 2.0)
        t, v = m.arrays()
        assert t.tolist() == [0.0, 1.0]
        assert v.tolist() == [1.0, 2.0]

    def test_time_must_not_go_backwards(self):
        m = Monitor()
        m.record(5.0, 1.0)
        with pytest.raises(ValueError):
            m.record(4.0, 1.0)

    def test_mean(self):
        m = Monitor()
        m.record(0, 2.0)
        m.record(1, 4.0)
        assert m.mean() == 3.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            Monitor().mean()

    def test_integrate_trapezoid(self):
        m = Monitor()
        m.record(0.0, 0.0)
        m.record(2.0, 2.0)
        assert m.integrate() == pytest.approx(2.0)

    def test_integrate_single_sample_is_zero(self):
        m = Monitor()
        m.record(0.0, 5.0)
        assert m.integrate() == 0.0


class TestStateTimeline:
    def test_durations(self):
        tl = StateTimeline("sleep", 0.0)
        tl.transition(10.0, "active")
        tl.transition(15.0, "sleep")
        d = tl.durations(end_time=20.0)
        assert d == {"sleep": 15.0, "active": 5.0}

    def test_same_state_transition_is_noop(self):
        tl = StateTimeline("sleep")
        tl.transition(5.0, "sleep")
        assert tl.durations(end_time=10.0) == {"sleep": 10.0}

    def test_integrate_with_weights(self):
        tl = StateTimeline("sleep", 0.0)
        tl.transition(178.5, "active")
        tl.close(300.0)
        # Table I-like numbers: sleep at 0.625 W, active at 2.14 W.
        energy = tl.integrate({"sleep": 0.625, "active": 2.14})
        assert energy == pytest.approx(0.625 * 178.5 + 2.14 * 121.5)

    def test_integrate_missing_weight_raises(self):
        tl = StateTimeline("sleep")
        tl.transition(1.0, "boot")
        with pytest.raises(KeyError):
            tl.integrate({"sleep": 1.0}, end_time=2.0)

    def test_backwards_transition_raises(self):
        tl = StateTimeline("a", 5.0)
        with pytest.raises(ValueError):
            tl.transition(4.0, "b")

    def test_closed_timeline_rejects_transitions(self):
        tl = StateTimeline("a")
        tl.close(10.0)
        with pytest.raises(ValueError):
            tl.transition(11.0, "b")

    def test_segments(self):
        tl = StateTimeline("a", 0.0)
        tl.transition(2.0, "b")
        segs = tl.segments(end_time=5.0)
        assert segs == [(0.0, 2.0, "a"), (2.0, 5.0, "b")]

    @given(st.lists(st.floats(min_value=0.01, max_value=100, allow_nan=False), min_size=1, max_size=20))
    def test_durations_sum_to_window(self, gaps):
        tl = StateTimeline("s0", 0.0)
        t = 0.0
        for i, gap in enumerate(gaps):
            t += gap
            tl.transition(t, f"s{i % 3}")
        end = t + 1.0
        total = sum(tl.durations(end_time=end).values())
        assert total == pytest.approx(end)
