"""Tests for generator processes and composite conditions."""

import pytest

from repro.des.engine import Engine, Interrupt, SimulationError
from repro.des.process import AllOf, AnyOf


class TestProcess:
    def test_sequential_timeouts(self):
        eng = Engine()
        marks = []

        def proc():
            yield eng.timeout(2.0)
            marks.append(eng.now)
            yield eng.timeout(3.0)
            marks.append(eng.now)

        eng.process(proc())
        eng.run()
        assert marks == [2.0, 5.0]

    def test_return_value_becomes_event_value(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            return 42

        p = eng.process(proc())
        eng.run()
        assert p.value == 42

    def test_process_waits_on_process(self):
        eng = Engine()
        results = []

        def child():
            yield eng.timeout(4.0)
            return "done"

        def parent():
            value = yield eng.process(child())
            results.append((eng.now, value))

        eng.process(parent())
        eng.run()
        assert results == [(4.0, "done")]

    def test_exception_propagates_as_failure(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("kaput")

        p = eng.process(bad())
        with pytest.raises(ValueError, match="kaput"):
            eng.run()
        assert p.triggered and not p.ok

    def test_waiter_sees_child_failure(self):
        eng = Engine()
        caught = []

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("inner")

        def parent():
            try:
                yield eng.process(bad())
            except ValueError as exc:
                caught.append(str(exc))

        eng.process(parent())
        eng.run()
        assert caught == ["inner"]

    def test_yield_non_event_fails_process(self):
        eng = Engine()

        def bad():
            yield 42

        eng.process(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_requires_generator(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.process(lambda: None)

    def test_is_alive(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)

        p = eng.process(proc())
        assert p.is_alive
        eng.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        eng = Engine()
        caught = []

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt as i:
                caught.append((eng.now, i.cause))

        p = eng.process(sleeper())

        def interrupter():
            yield eng.timeout(5.0)
            p.interrupt("wake up")

        eng.process(interrupter())
        eng.run()
        assert caught == [(5.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1.0)

        p = eng.process(quick())
        eng.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_allof_waits_for_all(self):
        eng = Engine()
        times = []

        def proc():
            yield AllOf(eng, [eng.timeout(1.0), eng.timeout(5.0), eng.timeout(3.0)])
            times.append(eng.now)

        eng.process(proc())
        eng.run()
        assert times == [5.0]

    def test_anyof_fires_on_first(self):
        eng = Engine()
        times = []

        def proc():
            yield AnyOf(eng, [eng.timeout(1.0), eng.timeout(5.0)])
            times.append(eng.now)

        eng.process(proc())
        eng.run()
        assert times == [1.0]

    def test_allof_collects_values(self):
        eng = Engine()
        got = {}

        def proc():
            values = yield AllOf(eng, [eng.timeout(1.0, "a"), eng.timeout(2.0, "b")])
            got.update(values)

        eng.process(proc())
        eng.run()
        assert got == {0: "a", 1: "b"}

    def test_empty_allof_fires_immediately(self):
        eng = Engine()
        fired = []

        def proc():
            yield AllOf(eng, [])
            fired.append(eng.now)

        eng.process(proc())
        eng.run()
        assert fired == [0.0]
