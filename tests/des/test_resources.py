"""Tests for DES resources and stores."""

import pytest

from repro.des.engine import Engine, SimulationError
from repro.des.resources import PriorityResource, Resource, Store


class TestResource:
    def test_grant_within_capacity(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2 and res.available == 0

    def test_queueing_and_handoff(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        timeline = []

        def user(name, hold):
            req = res.request()
            yield req
            timeline.append((eng.now, name, "in"))
            yield eng.timeout(hold)
            res.release(req)
            timeline.append((eng.now, name, "out"))

        eng.process(user("a", 5.0))
        eng.process(user("b", 2.0))
        eng.run()
        assert timeline == [
            (0.0, "a", "in"),
            (5.0, "a", "out"),
            (5.0, "b", "in"),
            (7.0, "b", "out"),
        ]

    def test_fifo_queue_order(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def user(name):
            req = res.request()
            yield req
            order.append(name)
            yield eng.timeout(1.0)
            res.release(req)

        for n in ("first", "second", "third"):
            eng.process(user(n))
        eng.run()
        assert order == ["first", "second", "third"]

    def test_release_unqueued_raises(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        foreign = eng.event()
        with pytest.raises(SimulationError):
            res.release(foreign)

    def test_cancel_queued_request(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        granted = res.request()
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # cancels the queued request
        assert res.queue_length == 0
        res.release(granted)
        assert res.in_use == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)


class TestPriorityResource:
    def test_low_priority_number_first(self):
        eng = Engine()
        res = PriorityResource(eng, capacity=1)
        order = []

        def holder():
            req = res.request(priority=0)
            yield req
            yield eng.timeout(10.0)
            res.release(req)

        def waiter(name, prio, delay):
            yield eng.timeout(delay)
            req = res.request(priority=prio)
            yield req
            order.append(name)
            res.release(req)

        eng.process(holder())
        eng.process(waiter("low-prio", 5, 1.0))
        eng.process(waiter("high-prio", 1, 2.0))
        eng.run()
        assert order == ["high-prio", "low-prio"]


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            item = yield store.get()
            got.append((eng.now, item))

        def producer():
            yield eng.timeout(3.0)
            store.put("honey")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got == [(3.0, "honey")]

    def test_fifo_items(self):
        eng = Engine()
        store = Store(eng)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_len(self):
        eng = Engine()
        store = Store(eng)
        assert len(store) == 0
        store.put("a")
        assert len(store) == 1
