"""Tests for the DES engine event loop."""

import pytest

from repro.des.engine import Engine, SimulationError


class TestTimeAdvance:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start(self):
        assert Engine(start_time=10.0).now == 10.0

    def test_timeout_advances_clock(self):
        eng = Engine()
        eng.timeout(5.0)
        eng.run()
        assert eng.now == 5.0

    def test_run_until_extends_clock(self):
        eng = Engine()
        eng.timeout(2.0)
        eng.run(until=100.0)
        assert eng.now == 100.0

    def test_run_until_does_not_fire_later_events(self):
        eng = Engine()
        fired = []
        ev = eng.timeout(50.0)
        ev.callbacks.append(lambda e: fired.append(eng.now))
        eng.run(until=10.0)
        assert fired == []
        eng.run(until=60.0)
        assert fired == [50.0]

    def test_run_until_past_raises(self):
        eng = Engine()
        eng.timeout(1.0)
        eng.run()
        with pytest.raises(SimulationError):
            eng.run(until=0.5)

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Engine().timeout(-1.0)

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Engine().step()

    def test_peek(self):
        eng = Engine()
        assert eng.peek() == float("inf")
        eng.timeout(3.0)
        assert eng.peek() == 3.0


class TestEventOrdering:
    def test_fifo_at_equal_time(self):
        eng = Engine()
        order = []
        for i in range(5):
            ev = eng.timeout(1.0)
            ev.callbacks.append(lambda e, i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_ordering(self):
        eng = Engine()
        order = []
        for delay in (3.0, 1.0, 2.0):
            ev = eng.timeout(delay)
            ev.callbacks.append(lambda e, d=delay: order.append(d))
        eng.run()
        assert order == [1.0, 2.0, 3.0]

    def test_priority_beats_insertion(self):
        eng = Engine()
        order = []
        late = eng.event()
        late.succeed("late", delay=1.0, priority=2)
        urgent = eng.event()
        urgent.succeed("urgent", delay=1.0, priority=0)
        late.callbacks.append(lambda e: order.append(e.value))
        urgent.callbacks.append(lambda e: order.append(e.value))
        eng.run()
        assert order == ["urgent", "late"]


class TestEventLifecycle:
    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            _ = eng.event().value

    def test_failed_event_raises_at_fire_if_not_defused(self):
        eng = Engine()
        ev = eng.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            eng.run()

    def test_defused_failure_does_not_raise(self):
        eng = Engine()
        ev = eng.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        eng.run()  # no raise

    def test_fail_requires_exception(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")

    def test_callbacks_receive_event(self):
        eng = Engine()
        got = []
        ev = eng.timeout(1.0, value="payload")
        ev.callbacks.append(lambda e: got.append(e.value))
        eng.run()
        assert got == ["payload"]
        assert ev.processed and ev.ok
