"""Engine fast path: lazy cancellation, timeout pooling, batched run loop."""

import pytest

from repro.des.engine import Engine, SimulationError, Timeout


class TestLazyCancellation:
    def test_cancelled_event_never_fires(self):
        eng = Engine()
        fired = []
        ev = eng.timeout(5.0, "x")
        ev.callbacks.append(lambda e: fired.append(e.value))
        ev.cancel()
        assert ev.cancelled
        eng.run()
        assert fired == []
        # A discarded entry does not advance the clock (nothing fired).
        assert eng.now == 0.0

    def test_step_skips_cancelled(self):
        eng = Engine()
        seen = []
        eng.timeout(1.0).cancel()
        live = eng.timeout(2.0, "live")
        live.callbacks.append(lambda e: seen.append(e.value))
        eng.step()
        assert seen == ["live"]
        assert eng.now == 2.0

    def test_cancel_twice_is_noop(self):
        eng = Engine()
        ev = eng.timeout(1.0)
        ev.cancel()
        ev.cancel()
        assert ev.cancelled

    def test_cancel_after_fire_is_error(self):
        eng = Engine()
        ev = eng.timeout(1.0)
        eng.run()
        with pytest.raises(SimulationError):
            ev.cancel()

    def test_process_yielding_cancelled_event_fails(self):
        eng = Engine()
        ev = eng.timeout(3.0)
        ev.cancel()

        def proc():
            yield ev

        p = eng.process(proc())
        with pytest.raises(SimulationError, match="cancelled"):
            eng.run()
        assert not p.is_alive


class TestTimeoutPooling:
    def test_pooling_recycles_instances(self):
        eng = Engine(pool_timeouts=True)

        def proc():
            for _ in range(50):
                yield eng.timeout(1.0)

        eng.process(proc())
        eng.run()
        assert eng.now == 50.0
        # After the first yield the same slab instance keeps being re-armed.
        assert len(eng._pool) >= 1

    def test_pool_cap_bounds_slab(self):
        eng = Engine(pool_timeouts=True, pool_cap=2)
        for _ in range(10):
            eng.timeout(1.0)
        eng.run()
        assert len(eng._pool) <= 2

    def test_default_engine_does_not_pool(self):
        eng = Engine()

        def proc():
            for _ in range(5):
                yield eng.timeout(1.0)

        eng.process(proc())
        eng.run()
        assert eng._pool == []

    def test_pooled_engine_same_results_as_default(self):
        def trace(eng):
            out = []

            def ticker(label, dt):
                while eng.now < 20.0:
                    yield eng.timeout(dt)
                    out.append((label, eng.now))

            eng.process(ticker("a", 2.0))
            eng.process(ticker("b", 3.0))
            eng.run(until=20.0)
            return out

        assert trace(Engine()) == trace(Engine(pool_timeouts=True))

    def test_interrupt_orphans_timeout_for_recycling(self):
        eng = Engine(pool_timeouts=True)

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Exception:
                yield eng.timeout(1.0)

        p = eng.process(sleeper())

        def interrupter():
            yield eng.timeout(5.0)
            p.interrupt("wake")

        eng.process(interrupter())
        eng.run()
        assert eng.now == 6.0  # interrupted at 5, re-slept 1

    def test_rearmed_timeout_is_fresh(self):
        eng = Engine(pool_timeouts=True)
        seen = []

        def proc():
            v1 = yield eng.timeout(1.0, "one")
            seen.append(v1)
            v2 = yield eng.timeout(2.0, "two")
            seen.append(v2)

        eng.process(proc())
        eng.run()
        assert seen == ["one", "two"]
        assert eng.now == 3.0


class TestBatchedRun:
    def test_run_until_stops_and_advances_clock(self):
        eng = Engine()
        hits = []

        def proc():
            while True:
                yield eng.timeout(1.0)
                hits.append(eng.now)

        eng.process(proc())
        eng.run(until=4.5)
        assert hits == [1.0, 2.0, 3.0, 4.0]
        assert eng.now == 4.5

    def test_run_until_in_past_raises(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.run(until=5.0)

    def test_failed_event_propagates_and_active_stays_consistent(self):
        eng = Engine()
        eng.event().fail(RuntimeError("boom"))
        ok = eng.timeout(1.0)
        with pytest.raises(RuntimeError):
            eng.run()
        # The failed event was consumed; the queue can still drain.
        eng.run()
        assert ok.processed

    def test_timeout_type_is_event_subclass(self):
        eng = Engine()
        ev = eng.timeout(1.0)
        assert isinstance(ev, Timeout)
        assert ev.triggered and ev.ok
