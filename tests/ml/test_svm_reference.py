"""Cross-validation of the SMO solver against a reference QP solution.

The SVM dual is a box-constrained QP with one equality constraint:

    max_a  Σa_i − ½ ΣΣ a_i a_j t_i t_j K_ij
    s.t.   0 ≤ a_i ≤ C,  Σ a_i t_i = 0

We solve it with scipy's SLSQP on small problems and require the SMO
solution to reach the same dual objective (the optimum is unique in the
decision function even when alphas are not) and to agree on predictions.
"""

import numpy as np
import pytest
from scipy import optimize

from repro.ml.kernels import rbf_kernel
from repro.ml.svm import SVC


def dual_objective(alpha, t, K):
    return float(alpha.sum() - 0.5 * (alpha * t) @ K @ (alpha * t))


def solve_reference(K, t, C):
    """SLSQP solution of the SVM dual."""
    n = t.size

    def neg_obj(a):
        return -dual_objective(a, t, K)

    def neg_grad(a):
        return -(np.ones(n) - (K @ (a * t)) * t)

    constraints = {"type": "eq", "fun": lambda a: a @ t, "jac": lambda a: t}
    bounds = [(0.0, C)] * n
    best = None
    for seed in (0, 1):
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(0, C / 10, size=n)
        x0 -= t * (x0 @ t) / n  # project toward the equality constraint
        x0 = np.clip(x0, 0, C)
        res = optimize.minimize(
            neg_obj, x0, jac=neg_grad, bounds=bounds, constraints=constraints,
            method="SLSQP", options={"maxiter": 500, "ftol": 1e-12},
        )
        if best is None or res.fun < best.fun:
            best = res
    return best.x


def blobs(rng, n, gap):
    a = rng.normal((-gap / 2, 0), 0.6, size=(n // 2, 2))
    b = rng.normal((gap / 2, 0), 0.6, size=(n // 2, 2))
    X = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    perm = rng.permutation(n)
    return X[perm], y[perm]


@pytest.mark.parametrize("gap,C", [(3.0, 5.0), (1.0, 5.0), (0.3, 2.0)])
def test_smo_reaches_reference_dual_objective(gap, C):
    rng = np.random.default_rng(7)
    X, y = blobs(rng, n=24, gap=gap)
    gamma = 0.5
    K = rbf_kernel(X, X, gamma=gamma)
    t = np.where(y == 1, 1.0, -1.0)

    clf = SVC(C=C, kernel="rbf", gamma=gamma, tol=1e-4, max_passes=10, seed=0).fit(X, y)
    alpha_smo = np.zeros(len(y))
    alpha_smo[clf.support_] = clf.dual_coef_ * t[clf.support_]

    alpha_ref = solve_reference(K, t, C)
    obj_smo = dual_objective(alpha_smo, t, K)
    obj_ref = dual_objective(alpha_ref, t, K)
    # SMO must reach the reference optimum (within solver tolerances).
    assert obj_smo >= obj_ref - max(1e-3 * abs(obj_ref), 1e-3)


def test_smo_predictions_match_reference():
    rng = np.random.default_rng(3)
    X, y = blobs(rng, n=24, gap=1.0)
    gamma, C = 0.5, 5.0
    K = rbf_kernel(X, X, gamma=gamma)
    t = np.where(y == 1, 1.0, -1.0)

    clf = SVC(C=C, kernel="rbf", gamma=gamma, tol=1e-4, max_passes=10, seed=0).fit(X, y)

    alpha_ref = solve_reference(K, t, C)
    # Reference bias from free support vectors.
    free = (alpha_ref > 1e-6) & (alpha_ref < C - 1e-6)
    f_no_b = K @ (alpha_ref * t)
    b_ref = float(np.mean(t[free] - f_no_b[free])) if free.any() else 0.0

    Xte, yte = blobs(np.random.default_rng(11), n=30, gap=1.0)
    Kte = rbf_kernel(Xte, X, gamma=gamma)
    scores_ref = Kte @ (alpha_ref * t) + b_ref
    preds_ref = np.where(scores_ref >= 0, 1, 0)
    preds_smo = clf.predict(Xte)
    # Allow disagreement only very near the boundary.
    disagree = preds_ref != preds_smo
    assert np.all(np.abs(scores_ref[disagree]) < 0.1)


def test_kkt_conditions_hold():
    """Spot-check the KKT system on the SMO solution directly."""
    rng = np.random.default_rng(5)
    X, y = blobs(rng, n=30, gap=0.8)
    gamma, C = 0.5, 3.0
    clf = SVC(C=C, kernel="rbf", gamma=gamma, tol=1e-4, max_passes=10, seed=0).fit(X, y)
    K = rbf_kernel(X, X, gamma=gamma)
    t = np.where(y == 1, 1.0, -1.0)
    alpha = np.zeros(len(y))
    alpha[clf.support_] = clf.dual_coef_ * t[clf.support_]
    margins = t * (K @ (alpha * t) + clf.intercept_)
    tol = 5e-3
    for i in range(len(y)):
        if alpha[i] < 1e-6:  # non-SV: margin >= 1
            assert margins[i] >= 1.0 - tol
        elif alpha[i] > C - 1e-6:  # bound SV: margin <= 1
            assert margins[i] <= 1.0 + tol
        else:  # free SV: margin == 1
            assert margins[i] == pytest.approx(1.0, abs=tol)
