"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy, confusion_matrix, precision_recall_f1


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert accuracy([1, 0], [1, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_binary(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        M = confusion_matrix(y_true, y_pred, labels=[0, 1])
        np.testing.assert_array_equal(M, [[1, 1], [1, 2]])

    def test_trace_equals_correct_count(self):
        y_true = np.array([0, 1, 2, 1, 0])
        y_pred = np.array([0, 1, 1, 1, 2])
        M = confusion_matrix(y_true, y_pred)
        assert np.trace(M) == int(np.sum(y_true == y_pred))

    def test_rows_sum_to_class_counts(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        M = confusion_matrix(y_true, y_pred, labels=[0, 1])
        assert M.sum(axis=1).tolist() == [2, 3]


class TestPrecisionRecallF1:
    def test_perfect(self):
        out = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert out == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_known_values(self):
        # tp=2, fp=1, fn=1.
        out = precision_recall_f1([1, 1, 1, 0], [1, 1, 0, 1])
        assert out["precision"] == pytest.approx(2 / 3)
        assert out["recall"] == pytest.approx(2 / 3)
        assert out["f1"] == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        out = precision_recall_f1([1, 1], [0, 0])
        assert out["precision"] == 0.0 and out["f1"] == 0.0

    def test_custom_positive_label(self):
        out = precision_recall_f1(["q", "n"], ["q", "q"], positive="q")
        assert out["recall"] == 1.0
        assert out["precision"] == 0.5
