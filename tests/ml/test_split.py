"""Tests for dataset splitting."""

import numpy as np
import pytest

from repro.ml.split import kfold_indices, train_test_split


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = (np.arange(100) % 2).astype(int)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
        # Per-class rounding: the test split lands within one sample per class.
        assert 23 <= len(Xte) <= 27
        assert len(Xtr) + len(Xte) == 100
        assert len(ytr) == len(Xtr) and len(yte) == len(Xte)

    def test_stratified_preserves_balance(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 80 + [1] * 20)
        _, _, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
        assert yte.sum() == 5  # 25% of the 20 positives

    def test_no_leakage(self, rng):
        X = np.arange(50).reshape(-1, 1).astype(float)
        y = (np.arange(50) % 2).astype(int)
        Xtr, Xte, _, _ = train_test_split(X, y, seed=1)
        assert set(Xtr.ravel()).isdisjoint(set(Xte.ravel()))
        assert len(Xtr) + len(Xte) == 50

    def test_reproducible(self, rng):
        X = rng.normal(size=(40, 2))
        y = (np.arange(40) % 2).astype(int)
        a = train_test_split(X, y, seed=7)
        b = train_test_split(X, y, seed=7)
        np.testing.assert_array_equal(a[1], b[1])

    def test_invalid_fraction(self, rng):
        X, y = rng.normal(size=(10, 2)), np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=1.0)

    def test_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.normal(size=(10, 2)), np.zeros(9))


class TestKfold:
    def test_folds_partition(self):
        seen = []
        for train, test in kfold_indices(20, k=4, seed=0):
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 20
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(20))

    def test_fold_count(self):
        assert len(list(kfold_indices(10, k=5))) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, k=1))
        with pytest.raises(ValueError):
            list(kfold_indices(3, k=5))
