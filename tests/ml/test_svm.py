"""Tests for the SMO-based SVC."""

import numpy as np
import pytest

from repro.ml.svm import SVC


def blobs(rng, n=60, gap=3.0):
    """Two well-separated Gaussian blobs."""
    a = rng.normal(loc=(-gap / 2, 0), scale=0.5, size=(n // 2, 2))
    b = rng.normal(loc=(gap / 2, 0), scale=0.5, size=(n // 2, 2))
    X = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    perm = rng.permutation(n)
    return X[perm], y[perm]


class TestFit:
    def test_separable_blobs_perfect(self, rng):
        X, y = blobs(rng)
        clf = SVC(C=10.0, kernel="rbf", gamma=0.5, seed=0).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_linear_kernel_separable(self, rng):
        X, y = blobs(rng)
        clf = SVC(C=10.0, kernel="linear", seed=0).fit(X, y)
        assert clf.score(X, y) >= 0.98

    def test_xor_needs_rbf(self, rng):
        """XOR is not linearly separable; the RBF kernel solves it."""
        X = rng.normal(size=(80, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        rbf = SVC(C=10.0, kernel="rbf", gamma=1.0, seed=0).fit(X, y)
        lin = SVC(C=10.0, kernel="linear", seed=0).fit(X, y)
        assert rbf.score(X, y) > 0.9
        assert lin.score(X, y) < 0.8

    def test_generalizes(self, rng):
        X, y = blobs(rng, n=100)
        Xte, yte = blobs(np.random.default_rng(99), n=40)
        clf = SVC(C=10.0, gamma=0.5, seed=0).fit(X, y)
        assert clf.score(Xte, yte) >= 0.95

    def test_arbitrary_label_values(self, rng):
        X, y01 = blobs(rng)
        y = np.where(y01 == 1, "queen", "no-queen")
        clf = SVC(C=10.0, gamma=0.5, seed=0).fit(X, y)
        preds = clf.predict(X)
        assert set(preds) <= {"queen", "no-queen"}
        assert np.mean(preds == y) == 1.0

    def test_gamma_scale(self, rng):
        X, y = blobs(rng)
        clf = SVC(C=10.0, gamma="scale", seed=0).fit(X, y)
        assert clf.score(X, y) >= 0.95

    def test_margin_violations_bounded_by_C(self, rng):
        """With overlapping classes all alphas stay within [0, C]."""
        X, y = blobs(rng, gap=0.5)
        clf = SVC(C=2.0, gamma=0.5, seed=0).fit(X, y)
        assert np.all(np.abs(clf.dual_coef_) <= 2.0 + 1e-6)

    def test_dual_constraint_satisfied(self, rng):
        """KKT equality: sum of alpha_i * t_i = 0."""
        X, y = blobs(rng, gap=1.0)
        clf = SVC(C=5.0, gamma=0.5, seed=0).fit(X, y)
        assert clf.dual_coef_.sum() == pytest.approx(0.0, abs=1e-6)

    def test_callable_kernel(self, rng):
        X, y = blobs(rng)
        clf = SVC(C=10.0, kernel=lambda A, B: A @ B.T, seed=0).fit(X, y)
        assert clf.score(X, y) >= 0.95


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.zeros((2, 2)))

    def test_requires_two_classes(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            SVC().fit(X, np.zeros(10))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            SVC().fit(rng.normal(size=(10, 2)), np.zeros(9))

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            SVC().fit(np.zeros(10), np.zeros(10))

    def test_unknown_gamma_string(self, rng):
        X, y = blobs(rng)
        with pytest.raises(ValueError):
            SVC(gamma="auto").fit(X, y)

    def test_decision_function_sign_matches_predict(self, rng):
        X, y = blobs(rng)
        clf = SVC(C=10.0, gamma=0.5, seed=0).fit(X, y)
        scores = clf.decision_function(X)
        preds = clf.predict(X)
        np.testing.assert_array_equal(preds == clf.classes_[1], scores >= 0)


class TestPaperSettings:
    def test_paper_hyperparameters_are_defaults(self):
        clf = SVC()
        assert clf.C == 20.0
        assert clf.gamma == 1e-5
        assert clf.kernel == "rbf"

    def test_paper_gamma_on_unscaled_features(self, rng):
        """gamma=1e-5 suits large-magnitude raw features (like dB stats)."""
        X, y = blobs(rng, gap=3.0)
        X = X * 100.0  # large feature scale
        clf = SVC(C=20.0, gamma=1e-5, seed=0).fit(X, y)
        assert clf.score(X, y) >= 0.95
