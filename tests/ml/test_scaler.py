"""Tests for StandardScaler."""

import numpy as np
import pytest

from repro.ml.scaler import StandardScaler


class TestStandardScaler:
    def test_fit_transform_standardizes(self, rng):
        X = rng.normal(5.0, 3.0, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, rtol=1e-9)

    def test_transform_uses_training_statistics(self, rng):
        Xtr = rng.normal(0, 1, size=(50, 3))
        Xte = rng.normal(10, 1, size=(20, 3))
        sc = StandardScaler().fit(Xtr)
        Zte = sc.transform(Xte)
        assert Zte.mean() > 5.0  # not re-centered on the test set

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(3, 2, size=(30, 5))
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)), X, rtol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_dim_mismatch(self, rng):
        sc = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            sc.transform(rng.normal(size=(5, 4)))
