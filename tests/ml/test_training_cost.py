"""Tests for training-cost accounting."""

import pytest

from repro.core.calibration import PAPER
from repro.ml.nn.flops import InferenceCostModel, count_flops
from repro.ml.nn.resnet import resnet18, small_cnn
from repro.ml.training_cost import (
    retraining_amortization,
    training_cost,
    training_flops,
)
from repro.util.units import DAY


@pytest.fixture(scope="module")
def tiny_model():
    return small_cnn(seed=0)


class TestTrainingFlops:
    def test_scales_with_samples_and_epochs(self, tiny_model):
        base = training_flops(tiny_model, (1, 32, 32), n_samples=100, epochs=1)
        assert training_flops(tiny_model, (1, 32, 32), 200, 1) == pytest.approx(2 * base)
        assert training_flops(tiny_model, (1, 32, 32), 100, 4) == pytest.approx(4 * base)

    def test_three_times_forward(self, tiny_model):
        forward = count_flops(tiny_model, (1, 32, 32))
        assert training_flops(tiny_model, (1, 32, 32), 1, 1) == pytest.approx(3 * forward)

    def test_validation(self, tiny_model):
        with pytest.raises(ValueError):
            training_flops(tiny_model, (1, 32, 32), 0, 1)
        with pytest.raises(ValueError):
            training_flops(tiny_model, (1, 32, 32), 1, 1, multiplier=0.0)


class TestPaperSetting:
    def make_models(self):
        from repro.ml.training_cost import paper_edge_training_model, paper_server_training_model

        model = resnet18(in_channels=1)
        shape = (1, PAPER.cnn_image_size, PAPER.cnn_image_size)
        return model, shape, paper_edge_training_model(), paper_server_training_model()

    def test_server_trains_in_minutes(self):
        """§V: the RTX 2070 'allows to train the deep learning models
        considered in this paper in few minutes'."""
        model, shape, _pi, server = self.make_models()
        cost = training_cost(model, shape, n_samples=1647, epochs=4, cost_model=server, device="rtx2070")
        assert 60.0 < cost.seconds < 3600.0  # minutes, not hours

    def test_edge_training_is_prohibitive(self):
        """On the Pi the same run takes days of wall time — the quantitative
        backing for the paper's train-in-the-cloud choice."""
        model, shape, pi, server = self.make_models()
        edge = training_cost(model, shape, 1647, 4, pi, device="pi3b+")
        cloud = training_cost(model, shape, 1647, 4, server, device="rtx2070")
        assert edge.seconds > 1.0 * DAY
        assert edge.seconds > 50 * cloud.seconds

    def test_amortization_negligible_at_weekly_cadence(self):
        """Retraining weekly on the server adds ~tenths of a joule per
        5-minute cycle — 'a less frequent task' indeed."""
        model, shape, _pi, server = self.make_models()
        cloud = training_cost(model, shape, 1647, 4, server)
        report = retraining_amortization(cloud, retraining_interval_s=7 * DAY)
        assert report.extra_joules_per_cycle < 20.0
        assert report.cycles_between_retraining == pytest.approx(2016)

    def test_render(self):
        model, shape, _pi, server = self.make_models()
        cloud = training_cost(model, shape, 100, 1, server)
        out = retraining_amortization(cloud, 7 * DAY).render()
        assert "amortized" in out
