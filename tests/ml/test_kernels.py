"""Tests for kernel functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.kernels import linear_kernel, make_kernel, polynomial_kernel, rbf_kernel


@pytest.fixture
def data(rng):
    return rng.normal(size=(10, 4)), rng.normal(size=(7, 4))


class TestLinear:
    def test_matches_dot(self, data):
        X, Z = data
        np.testing.assert_allclose(linear_kernel(X, Z), X @ Z.T)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            linear_kernel(np.zeros(3), np.zeros((2, 3)))


class TestPolynomial:
    def test_degree_one_affine(self, data):
        X, Z = data
        K = polynomial_kernel(X, Z, degree=1, gamma=1.0, coef0=0.0)
        np.testing.assert_allclose(K, X @ Z.T)

    def test_invalid_degree(self, data):
        X, Z = data
        with pytest.raises(ValueError):
            polynomial_kernel(X, Z, degree=0)


class TestRbf:
    def test_diagonal_is_one(self, rng):
        X = rng.normal(size=(8, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetric(self, rng):
        X = rng.normal(size=(8, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    def test_bounded(self, data):
        X, Z = data
        K = rbf_kernel(X, Z, gamma=0.1)
        assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)

    def test_matches_naive(self, data):
        X, Z = data
        gamma = 0.3
        K = rbf_kernel(X, Z, gamma=gamma)
        naive = np.empty((10, 7))
        for i in range(10):
            for j in range(7):
                naive[i, j] = np.exp(-gamma * np.sum((X[i] - Z[j]) ** 2))
        np.testing.assert_allclose(K, naive, rtol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_positive_semidefinite(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(6, 3))
        K = rbf_kernel(X, X, gamma=1.0)
        eigvals = np.linalg.eigvalsh(K)
        assert eigvals.min() > -1e-9

    def test_feature_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            rbf_kernel(rng.normal(size=(3, 4)), rng.normal(size=(3, 5)))

    def test_gamma_validation(self, data):
        X, Z = data
        with pytest.raises(ValueError):
            rbf_kernel(X, Z, gamma=0.0)


class TestFactory:
    def test_known_kernels(self, data):
        X, Z = data
        np.testing.assert_allclose(make_kernel("rbf", gamma=0.2)(X, Z), rbf_kernel(X, Z, 0.2))
        np.testing.assert_allclose(make_kernel("linear")(X, Z), linear_kernel(X, Z))
        np.testing.assert_allclose(
            make_kernel("poly", degree=2)(X, Z), polynomial_kernel(X, Z, degree=2)
        )

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_kernel("sigmoid")
