"""Tests for window functions."""

import numpy as np
import pytest

from repro.dsp.windows import get_window, hamming, hann, rectangular


class TestHann:
    def test_periodic_convention(self):
        w = hann(8)
        assert w[0] == pytest.approx(0.0)
        # Periodic: w[n] != w[N-n] symmetry point is at N/2.
        assert w[4] == pytest.approx(1.0)

    def test_cola_at_half_overlap(self):
        # Periodic Hann windows at 50% overlap sum to a constant.
        n, hop = 256, 128
        w = hann(n)
        acc = np.zeros(n + 3 * hop)
        for k in range(4):
            acc[k * hop : k * hop + n] += w
        middle = acc[n : 2 * hop + n - hop]
        assert np.allclose(middle, middle[0])

    def test_length_one(self):
        assert hann(1).tolist() == [1.0]

    def test_bounded(self):
        w = hann(100)
        assert np.all(w >= 0) and np.all(w <= 1)


class TestHamming:
    def test_endpoints_nonzero(self):
        w = hamming(16)
        assert w[0] == pytest.approx(0.08)

    def test_peak(self):
        assert hamming(16)[8] == pytest.approx(1.0)


class TestRegistry:
    def test_lookup(self):
        np.testing.assert_array_equal(get_window("hann", 8), hann(8))
        np.testing.assert_array_equal(get_window("boxcar", 4), rectangular(4))

    def test_case_insensitive(self):
        np.testing.assert_array_equal(get_window("HANN", 8), hann(8))

    def test_unknown(self):
        with pytest.raises(ValueError, match="hann"):
            get_window("kaiser", 8)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hann(0)
        with pytest.raises(TypeError):
            hann(2.5)
