"""Tests for SVM feature extraction."""

import numpy as np
import pytest

from repro.dsp.features import mel_statistics, svm_feature_vector
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig


class TestMelStatistics:
    def test_output_length(self):
        spec = np.random.default_rng(0).normal(size=(128, 431))
        feats = mel_statistics(spec)
        assert feats.shape == (256,)

    def test_mean_then_std_layout(self):
        spec = np.vstack([np.full(10, 2.0), np.zeros(10)])
        feats = mel_statistics(spec)
        assert feats[0] == 2.0 and feats[1] == 0.0  # means
        assert feats[2] == 0.0 and feats[3] == 0.0  # stds

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mel_statistics(np.zeros(10))

    def test_duration_invariant_length(self):
        short = mel_statistics(np.zeros((64, 40)))
        long = mel_statistics(np.zeros((64, 400)))
        assert short.shape == long.shape == (128,)


class TestSvmFeatureVector:
    def test_end_to_end(self):
        mel = MelSpectrogram(SpectrogramConfig())
        sig = np.random.default_rng(0).normal(size=22050).astype(np.float32)
        feats = svm_feature_vector(sig, mel)
        assert feats.shape == (256,)
        assert np.all(np.isfinite(feats))
