"""Tests for framing and the STFT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.stft import frame_signal, stft


class TestFraming:
    def test_frame_count(self):
        frames = frame_signal(np.zeros(1000), frame_length=256, hop=128, center=False)
        assert frames.shape == (1 + (1000 - 256) // 128, 256)

    def test_centered_frame_count(self):
        # librosa convention: with centering, n_frames = 1 + len//hop.
        sig = np.zeros(22050 * 2)
        frames = frame_signal(sig, 2048, 512, center=True)
        assert frames.shape[0] == 1 + len(sig) // 512

    def test_frames_are_views(self):
        sig = np.arange(100, dtype=float)
        frames = frame_signal(sig, 10, 5, center=False)
        np.testing.assert_array_equal(frames[0], sig[:10])
        np.testing.assert_array_equal(frames[1], sig[5:15])

    def test_frames_not_writeable(self):
        frames = frame_signal(np.zeros(100), 10, 5, center=False)
        with pytest.raises(ValueError):
            frames[0, 0] = 1.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            frame_signal(np.zeros(10), 100, 10, center=False)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            frame_signal(np.zeros((10, 10)), 4, 2)


class TestStft:
    def test_output_shape_paper_settings(self):
        # 10 s at 22 050 Hz with n_fft 2048, hop 512: 1025 bins x 431 frames.
        sig = np.random.default_rng(0).normal(size=220500)
        spec = stft(sig, n_fft=2048, hop=512)
        assert spec.shape == (1025, 431)

    def test_pure_tone_peak_at_bin(self):
        sr, f = 8192, 1024.0
        t = np.arange(sr) / sr
        sig = np.sin(2 * np.pi * f * t)
        spec = np.abs(stft(sig, n_fft=1024, hop=256))
        peak_bins = spec.argmax(axis=0)
        expected_bin = int(round(f / sr * 1024))
        # Every interior frame peaks at the tone's bin.
        assert np.all(peak_bins[2:-2] == expected_bin)

    def test_linearity(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=4096), rng.normal(size=4096)
        sa = stft(a, n_fft=512, hop=128)
        sb = stft(b, n_fft=512, hop=128)
        sab = stft(a + b, n_fft=512, hop=128)
        np.testing.assert_allclose(sab, sa + sb, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_parseval_style_ratio_constant(self, seed):
        """STFT power over signal power is window/overlap-determined, so for
        long stationary noise it is a constant independent of the signal."""
        rng = np.random.default_rng(seed)
        sig = rng.normal(size=16384)
        spec = stft(sig, n_fft=1024, hop=256)
        ratio = np.sum(np.abs(spec) ** 2) / np.sum(sig**2)
        # rfft keeps ~half the bins: ratio ~ (n_fft/2) * overlap * mean(w^2)
        # = 512 * 4 * 0.375 = 768 for a periodic Hann at 4x overlap.
        assert ratio == pytest.approx(768.0, rel=0.1)

    def test_zero_signal(self):
        spec = stft(np.zeros(4096), n_fft=512, hop=128)
        assert np.all(spec == 0)
