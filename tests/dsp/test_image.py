"""Tests for bilinear resize and image normalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.image import normalize_image, resize_bilinear, spectrogram_to_image


class TestResizeBilinear:
    def test_identity(self):
        img = np.random.default_rng(0).normal(size=(16, 16))
        np.testing.assert_allclose(resize_bilinear(img, 16, 16), img, atol=1e-12)

    def test_constant_image_preserved(self):
        img = np.full((10, 20), 3.7)
        out = resize_bilinear(img, 7, 13)
        np.testing.assert_allclose(out, 3.7)

    def test_output_shape(self):
        out = resize_bilinear(np.zeros((128, 431)), 100, 100)
        assert out.shape == (100, 100)

    def test_range_preserved(self):
        """Bilinear interpolation never exceeds the input range."""
        rng = np.random.default_rng(1)
        img = rng.normal(size=(32, 32))
        out = resize_bilinear(img, 77, 13)
        assert out.min() >= img.min() - 1e-12
        assert out.max() <= img.max() + 1e-12

    def test_upsample_linear_gradient_exact(self):
        # A linear ramp resamples to a linear ramp.
        img = np.outer(np.arange(8, dtype=float), np.ones(8))
        out = resize_bilinear(img, 15, 8)
        diffs = np.diff(out[:, 0])
        interior = diffs[1:-1]
        assert np.allclose(interior, interior[0], atol=1e-9)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros(10), 5, 5)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), 0, 4)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
    )
    def test_mean_roughly_preserved(self, h, w, oh, ow):
        rng = np.random.default_rng(h * 1000 + w)
        img = rng.normal(size=(h, w))
        out = resize_bilinear(img, oh, ow)
        assert out.mean() == pytest.approx(img.mean(), abs=3.0 * img.std() / np.sqrt(min(h * w, oh * ow)) + 0.5)


class TestNormalize:
    def test_zero_mean_unit_std(self):
        img = np.random.default_rng(0).normal(5, 3, size=(20, 20))
        out = normalize_image(img)
        assert out.mean() == pytest.approx(0.0, abs=1e-9)
        assert out.std() == pytest.approx(1.0, rel=1e-6)

    def test_constant_image_no_blowup(self):
        out = normalize_image(np.full((5, 5), 2.0))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, 0.0)


class TestSpectrogramToImage:
    def test_pipeline(self):
        spec = np.random.default_rng(0).normal(size=(128, 431))
        img = spectrogram_to_image(spec, 100)
        assert img.shape == (100, 100)
        assert img.mean() == pytest.approx(0.0, abs=1e-9)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            spectrogram_to_image(np.zeros((128, 431)), 1)
