"""Tests for the mel scale and filterbank."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp.mel import hz_to_mel, mel_filterbank, mel_to_hz


class TestMelScale:
    def test_anchor_points(self):
        assert hz_to_mel(0.0) == 0.0
        # 1000 Hz is ~1000 mel in the HTK variant (within a few percent).
        assert hz_to_mel(1000.0) == pytest.approx(999.99, rel=0.01)

    @given(st.floats(min_value=0, max_value=20000, allow_nan=False))
    def test_roundtrip(self, hz):
        assert mel_to_hz(hz_to_mel(hz)) == pytest.approx(hz, rel=1e-9, abs=1e-6)

    @given(st.floats(min_value=0, max_value=19000), st.floats(min_value=1, max_value=1000))
    def test_monotone(self, hz, delta):
        assert hz_to_mel(hz + delta) > hz_to_mel(hz)

    def test_array_input(self):
        out = hz_to_mel(np.array([0.0, 700.0]))
        assert out.shape == (2,)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hz_to_mel(-1.0)


class TestFilterbank:
    def test_shape(self):
        bank = mel_filterbank(22050, 2048, n_mels=128)
        assert bank.shape == (128, 1025)

    def test_non_negative(self):
        bank = mel_filterbank(22050, 2048, n_mels=64)
        assert np.all(bank >= 0)

    def test_partition_of_unity_unnormalized(self):
        """Unnormalized triangular filters sum to ~1 between the first and
        last filter centres (the classic filterbank invariant)."""
        sr, n_fft = 22050, 2048
        bank = mel_filterbank(sr, n_fft, n_mels=40, normalize=False)
        col_sums = bank.sum(axis=0)
        freqs = np.linspace(0, sr / 2, n_fft // 2 + 1)
        mel_pts = np.linspace(hz_to_mel(0), hz_to_mel(sr / 2), 42)
        lo, hi = mel_to_hz(mel_pts[1]), mel_to_hz(mel_pts[-2])
        interior = (freqs > lo) & (freqs < hi)
        assert np.all(col_sums[interior] > 0.98)
        assert np.all(col_sums[interior] < 1.02)

    def test_each_filter_has_support(self):
        bank = mel_filterbank(22050, 2048, n_mels=128)
        assert np.all(bank.sum(axis=1) > 0)

    def test_filters_ordered_by_frequency(self):
        bank = mel_filterbank(22050, 2048, n_mels=32, normalize=False)
        peaks = bank.argmax(axis=1)
        assert np.all(np.diff(peaks) > 0)

    def test_fmin_fmax_restrict_support(self):
        bank = mel_filterbank(22050, 2048, n_mels=16, fmin=1000.0, fmax=4000.0)
        freqs = np.linspace(0, 11025, 1025)
        outside = (freqs < 990) | (freqs > 4010)
        assert np.all(bank[:, outside] == 0)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            mel_filterbank(22050, 2048, fmin=5000.0, fmax=1000.0)
        with pytest.raises(ValueError):
            mel_filterbank(22050, 2048, fmax=20000.0)
        with pytest.raises(ValueError):
            mel_filterbank(22050, 2048, n_mels=0)

    def test_slaney_normalization_flattens_noise(self):
        """Area normalization makes white noise produce a flat mel spectrum."""
        sr, n_fft = 22050, 2048
        bank = mel_filterbank(sr, n_fft, n_mels=64)
        flat_power = np.ones(n_fft // 2 + 1)
        mel_spec = bank @ flat_power
        interior = mel_spec[4:-4]
        assert interior.std() / interior.mean() < 0.1
