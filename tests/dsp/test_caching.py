"""Memoized DSP tables: shared filterbanks and analysis windows."""

import numpy as np
import pytest

from repro.dsp.mel import cached_mel_filterbank, mel_filterbank
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
from repro.dsp.stft import stft
from repro.dsp.windows import cached_window, get_window


class TestCachedFilterbank:
    def test_same_config_shares_one_array(self):
        a = cached_mel_filterbank(22050, 2048, 128)
        b = cached_mel_filterbank(22050, 2048, 128)
        assert a is b

    def test_values_match_uncached(self):
        np.testing.assert_array_equal(
            cached_mel_filterbank(22050, 1024, 64), mel_filterbank(22050, 1024, 64)
        )

    def test_cached_bank_is_read_only(self):
        bank = cached_mel_filterbank(22050, 2048, 128)
        with pytest.raises(ValueError):
            bank[0, 0] = 1.0

    def test_distinct_configs_distinct_arrays(self):
        assert cached_mel_filterbank(22050, 2048, 128) is not cached_mel_filterbank(
            22050, 2048, 64
        )

    def test_melspectrogram_instances_share_bank(self):
        cfg = SpectrogramConfig()
        a, b = MelSpectrogram(cfg), MelSpectrogram(cfg)
        assert a.filterbank is b.filterbank
        with pytest.raises(ValueError):
            a.filterbank[0, 0] = 1.0

    def test_melspectrogram_output_unchanged(self):
        clip = np.random.default_rng(0).normal(size=22050)
        mel = MelSpectrogram(SpectrogramConfig())
        manual_bank = mel_filterbank(22050, 2048, 128)
        spec = stft(clip, n_fft=2048, hop=512)
        expected = manual_bank @ (np.abs(spec) ** 2)
        np.testing.assert_allclose(mel.power(clip), expected, rtol=1e-12)


class TestCachedWindow:
    def test_same_window_shared_and_read_only(self):
        a = cached_window("hann", 2048)
        assert a is cached_window("hann", 2048)
        assert a is cached_window("HANN", 2048)  # case-normalized key
        with pytest.raises(ValueError):
            a[0] = 1.0

    def test_values_match_uncached(self):
        for name in ("hann", "hamming", "rectangular"):
            np.testing.assert_array_equal(cached_window(name, 512), get_window(name, 512))

    def test_unknown_window_still_raises(self):
        with pytest.raises(ValueError, match="unknown window"):
            cached_window("kaiser", 512)

    def test_get_window_stays_writable(self):
        win = get_window("hann", 128)
        win[0] = 5.0  # fresh, caller-owned array
        assert win[0] == 5.0
