"""Cross-validation of the DSP stack against scipy reference implementations."""

import numpy as np
import pytest
from scipy import fft as sp_fft
from scipy import signal as sp_signal

from repro.dsp.mfcc import dct_ii_matrix
from repro.dsp.stft import stft
from repro.dsp.windows import hann


class TestStftAgainstScipy:
    def test_magnitudes_match_scipy(self):
        """Our STFT equals scipy's ShortTimeFFT up to its scaling, frame for
        frame (same periodic Hann, same hop, same centering)."""
        rng = np.random.default_rng(0)
        sig = rng.normal(size=8192)
        n_fft, hop = 512, 128

        ours = stft(sig, n_fft=n_fft, hop=hop, center=True)

        win = hann(n_fft)
        sft = sp_signal.ShortTimeFFT(win, hop=hop, fs=1.0, fft_mode="onesided")
        theirs = sft.stft(sig)

        # scipy emits one extra leading frame (its frame grid starts half a
        # window before t=0); interior frames then agree exactly — our frame
        # k is scipy's frame k+1.  Edge frames differ by padding convention
        # (scipy zero-pads, we reflect), so compare away from both ends.
        edge = n_fft // hop + 1
        n = min(ours.shape[1], theirs.shape[1] - 1) - 2 * edge
        np.testing.assert_allclose(
            np.abs(ours[:, edge : edge + n]),
            np.abs(theirs[:, edge + 1 : edge + 1 + n]),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_window_matches_scipy_periodic_hann(self):
        np.testing.assert_allclose(
            hann(256), sp_signal.get_window("hann", 256, fftbins=True), atol=1e-12
        )

    def test_tone_frequency_readout(self):
        """Peak-bin frequency agrees with scipy's rfftfreq grid."""
        sr, f0 = 22050, 1000.0
        t = np.arange(2 * sr) / sr
        sig = np.sin(2 * np.pi * f0 * t)
        spec = np.abs(stft(sig, n_fft=2048, hop=512))
        freqs = np.fft.rfftfreq(2048, 1 / sr)
        peak = freqs[spec.mean(axis=1).argmax()]
        assert peak == pytest.approx(f0, abs=sr / 2048)


class TestDctAgainstScipy:
    def test_matches_scipy_orthonormal_dct(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=64)
        ours = dct_ii_matrix(64, 64) @ x
        theirs = sp_fft.dct(x, type=2, norm="ortho")
        np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_partial_matches_truncated_scipy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=128)
        ours = dct_ii_matrix(128, 20) @ x
        theirs = sp_fft.dct(x, type=2, norm="ortho")[:20]
        np.testing.assert_allclose(ours, theirs, atol=1e-10)
