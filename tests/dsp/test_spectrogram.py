"""Tests for the mel-spectrogram pipeline."""

import numpy as np
import pytest

from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig, power_to_db


class TestPowerToDb:
    def test_reference_is_zero_db(self):
        power = np.array([1.0, 10.0, 100.0])
        db = power_to_db(power)
        assert db.max() == pytest.approx(0.0)
        assert db.min() == pytest.approx(-20.0)

    def test_top_db_clipping(self):
        power = np.array([1e-12, 1.0])
        db = power_to_db(power, top_db=80.0)
        assert db.min() == pytest.approx(-80.0)

    def test_explicit_reference(self):
        db = power_to_db(np.array([10.0]), ref=1.0, top_db=200.0)
        assert db[0] == pytest.approx(10.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            power_to_db(np.array([-1.0]))

    def test_invalid_top_db(self):
        with pytest.raises(ValueError):
            power_to_db(np.ones(3), top_db=0.0)


class TestMelSpectrogram:
    @pytest.fixture(scope="class")
    def mel(self):
        return MelSpectrogram(SpectrogramConfig())

    def test_paper_shape(self, mel):
        """10 s at 22 050 Hz -> (128, 431) with the paper's settings."""
        sig = np.random.default_rng(0).normal(size=220500)
        out = mel.power(sig)
        assert out.shape == (128, 431)

    def test_db_range(self, mel):
        sig = np.random.default_rng(0).normal(size=22050)
        db = mel.db(sig, top_db=80.0)
        assert db.max() == pytest.approx(0.0)
        assert db.min() >= -80.0

    def test_tone_lands_in_correct_band(self, mel):
        sr = 22050
        t = np.arange(sr) / sr
        tone = np.sin(2 * np.pi * 1000.0 * t)
        power = mel.power(tone)
        band = power.mean(axis=1).argmax()
        # Find which filter is centred nearest 1 kHz.
        bank = mel.filterbank
        freqs = np.linspace(0, sr / 2, bank.shape[1])
        centers = freqs[bank.argmax(axis=1)]
        expected = int(np.argmin(np.abs(centers - 1000.0)))
        assert abs(band - expected) <= 1

    def test_filterbank_readonly(self, mel):
        with pytest.raises(ValueError):
            mel.filterbank[0, 0] = 1.0

    def test_callable_interface(self, mel):
        sig = np.random.default_rng(1).normal(size=22050)
        np.testing.assert_array_equal(mel(sig), mel.db(sig))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpectrogramConfig(n_fft=4)
        with pytest.raises(ValueError):
            SpectrogramConfig(hop=0)
        with pytest.raises(ValueError):
            SpectrogramConfig(sample_rate=0)
