"""Tests for the MFCC implementation."""

import numpy as np
import pytest

from repro.dsp.mfcc import dct_ii_matrix, delta, mfcc, mfcc_feature_vector
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig


class TestDctMatrix:
    def test_orthonormal_rows(self):
        basis = dct_ii_matrix(32, 32)
        np.testing.assert_allclose(basis @ basis.T, np.eye(32), atol=1e-12)

    def test_first_row_is_scaled_mean(self):
        basis = dct_ii_matrix(16, 4)
        np.testing.assert_allclose(basis[0], np.full(16, 1.0 / np.sqrt(16)), atol=1e-12)

    def test_partial_basis(self):
        basis = dct_ii_matrix(64, 13)
        assert basis.shape == (13, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            dct_ii_matrix(8, 9)
        with pytest.raises(ValueError):
            dct_ii_matrix(0, 0)


class TestMfcc:
    def test_shape(self):
        spec = np.random.default_rng(0).normal(size=(128, 50))
        out = mfcc(spec, n_mfcc=20)
        assert out.shape == (20, 50)

    def test_constant_spectrum_energy_in_c0(self):
        spec = np.full((64, 10), -30.0)
        out = mfcc(spec, n_mfcc=13)
        assert np.abs(out[0]).min() > 0
        np.testing.assert_allclose(out[1:], 0.0, atol=1e-9)

    def test_full_dct_invertible(self):
        spec = np.random.default_rng(1).normal(size=(32, 5))
        coefs = mfcc(spec, n_mfcc=32)
        basis = dct_ii_matrix(32, 32)
        np.testing.assert_allclose(basis.T @ coefs, spec, atol=1e-10)

    def test_liftering_changes_scale(self):
        spec = np.random.default_rng(2).normal(size=(64, 8))
        plain = mfcc(spec, n_mfcc=13, lifter=0.0)
        liftered = mfcc(spec, n_mfcc=13, lifter=22.0)
        assert not np.allclose(plain[1:], liftered[1:])
        np.testing.assert_allclose(plain[0], liftered[0])  # c0 unweighted

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mfcc(np.zeros(10))

    def test_negative_lifter_rejected(self):
        with pytest.raises(ValueError):
            mfcc(np.zeros((16, 4)), n_mfcc=4, lifter=-1.0)


class TestDelta:
    def test_constant_signal_zero_delta(self):
        np.testing.assert_allclose(delta(np.full((4, 20), 3.0)), 0.0, atol=1e-12)

    def test_linear_ramp_constant_delta(self):
        feats = np.tile(np.arange(20.0), (3, 1))
        d = delta(feats, width=2)
        np.testing.assert_allclose(d[:, 3:-3], 1.0, atol=1e-9)

    def test_shape_preserved(self):
        d = delta(np.random.default_rng(0).normal(size=(13, 40)))
        assert d.shape == (13, 40)

    def test_validation(self):
        with pytest.raises(ValueError):
            delta(np.zeros(10))
        with pytest.raises(ValueError):
            delta(np.zeros((3, 10)), width=0)


class TestFeatureVector:
    def test_length(self):
        mel = MelSpectrogram(SpectrogramConfig())
        sig = np.random.default_rng(0).normal(size=22050)
        feats = mfcc_feature_vector(sig, mel, n_mfcc=20, include_delta=True)
        assert feats.shape == (80,)  # 2*20 + 2*20
        feats_no_delta = mfcc_feature_vector(sig, mel, n_mfcc=20, include_delta=False)
        assert feats_no_delta.shape == (40,)

    def test_separates_queen_classes(self, small_features):
        """MFCC features carry the class cue too (feature ablation)."""
        from repro.dsp.mfcc import mfcc as mfcc_fn
        from repro.ml.scaler import StandardScaler
        from repro.ml.split import train_test_split
        from repro.ml.svm import SVC

        specs, y = small_features
        X = np.stack([
            np.concatenate([mfcc_fn(s, 20).mean(axis=1), mfcc_fn(s, 20).std(axis=1)])
            for s in specs
        ])
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=4)
        sc = StandardScaler()
        clf = SVC(C=20.0, gamma="scale", seed=4).fit(sc.fit_transform(Xtr), ytr)
        assert clf.score(sc.transform(Xte), yte) >= 0.7
