"""Chaos suite: the ``repro-chaos`` scenarios, run under pytest for CI.

Each test drives one scenario function directly (same code path as the
CLI), so a red test names the exact broken guarantee.  The CLI surface
itself — argument handling, exit codes, the ``--chaos-abort-after-saves``
hook on ``repro-exp`` — is covered at the bottom via subprocesses.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.resilience import chaos

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_cli(module: str, *args: str, timeout: float = 300.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (REPO_SRC, env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


# -- scenario guarantees ------------------------------------------------------


def test_kill_worker_retried_exact():
    assert "results exact" in chaos.scenario_kill_worker()


def test_hang_worker_reaped_by_deadline():
    assert "results exact" in chaos.scenario_hang_worker()


def test_truncate_checkpoint_never_garbage():
    assert "CheckpointCorrupt" in chaos.scenario_truncate_checkpoint()


def test_stale_schema_refused_with_versions():
    from repro.resilience.checkpoint import CHECKPOINT_SCHEMA

    detail = chaos.scenario_stale_schema()
    assert f"found {CHECKPOINT_SCHEMA + 1}" in detail
    assert f"expected {CHECKPOINT_SCHEMA}" in detail


def test_kill_resume_bit_identical():
    assert "bit-identical" in chaos.scenario_kill_resume()


def test_link_outage_resume_matches_golden():
    assert "matched the committed golden" in chaos.scenario_link_outage_resume()


def test_kill_serve_resume_trace_bit_identical():
    assert "bit-identical" in chaos.scenario_kill_serve_resume()


# -- CLI surface --------------------------------------------------------------


def test_chaos_cli_lists_every_scenario():
    proc = _run_cli("repro.resilience.chaos", "--list")
    assert proc.returncode == 0
    for name in chaos.SCENARIOS:
        assert name in proc.stdout


def test_chaos_cli_rejects_unknown_scenario():
    proc = _run_cli("repro.resilience.chaos", "no-such-scenario")
    assert proc.returncode == 2
    assert "unknown scenario" in proc.stderr


def test_chaos_cli_runs_selected_scenarios():
    proc = _run_cli("repro.resilience.chaos", "stale-schema", "truncate-checkpoint")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "all 2 chaos scenario(s) survived" in proc.stdout


def test_exp_cli_chaos_abort_then_resume_is_byte_identical(tmp_path):
    """The repro-exp flags end to end: deterministic crash at the second
    checkpoint save (exit 130 + resume hint), then --resume completing to a
    JSON document byte-identical to an uninterrupted run's."""
    fresh = tmp_path / "fresh.json"
    resumed = tmp_path / "resumed.json"
    ckpt = tmp_path / "ck.json"

    ok = _run_cli("repro.cli", "ext-contention", "--seed", "7", "--json-out", str(fresh))
    assert ok.returncode == 0, ok.stderr

    crashed = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--chaos-abort-after-saves", "2",
        "--json-out", str(tmp_path / "never.json"),
    )
    assert crashed.returncode == 130
    assert "re-run with --resume" in crashed.stderr
    assert not (tmp_path / "never.json").exists()

    done = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--resume", "--json-out", str(resumed),
    )
    assert done.returncode == 0, done.stderr
    assert "resuming from checkpoint" in done.stderr
    assert fresh.read_bytes() == resumed.read_bytes()


def test_exp_cli_refuses_wrong_seed_checkpoint(tmp_path):
    ckpt = tmp_path / "ck.json"
    crashed = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--chaos-abort-after-saves", "1",
    )
    assert crashed.returncode == 130
    other = _run_cli(
        "repro.cli", "ext-contention", "--seed", "8",
        "--checkpoint", str(ckpt), "--resume",
    )
    assert other.returncode == 3
    assert "different run" in other.stderr


def test_exp_cli_refuses_truncated_checkpoint(tmp_path):
    ckpt = tmp_path / "ck.json"
    crashed = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--chaos-abort-after-saves", "1",
    )
    assert crashed.returncode == 130
    ckpt.write_bytes(ckpt.read_bytes()[: ckpt.stat().st_size // 2])
    cut = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--resume",
    )
    assert cut.returncode == 3
    assert "checkpoint error" in cut.stderr


def test_exp_cli_refuses_stale_schema(tmp_path):
    ckpt = tmp_path / "ck.json"
    crashed = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--chaos-abort-after-saves", "1",
    )
    assert crashed.returncode == 130
    envelope = json.loads(ckpt.read_text())
    envelope["schema"] = 99
    ckpt.write_text(json.dumps(envelope))
    stale = _run_cli(
        "repro.cli", "ext-contention", "--seed", "7",
        "--checkpoint", str(ckpt), "--resume",
    )
    assert stale.returncode == 3
    assert "refused" in stale.stderr


def test_exp_cli_checkpoint_argument_validation():
    two = _run_cli("repro.cli", "fig7", "ext-contention", "--checkpoint", "x.json")
    assert two.returncode == 2
    not_ckpt = _run_cli("repro.cli", "table1", "--checkpoint", "x.json")
    assert not_ckpt.returncode == 2
    bare_resume = _run_cli("repro.cli", "ext-contention", "--resume")
    assert bare_resume.returncode == 2
    assert "--resume requires --checkpoint" in bare_resume.stderr
    bad_cadence = _run_cli(
        "repro.cli", "ext-contention", "--checkpoint", "x.json",
        "--checkpoint-every", "0",
    )
    assert bad_cadence.returncode == 2
    assert "--checkpoint-every must be >= 1" in bad_cadence.stderr
