"""Tests for the in-hive microclimate model."""

import numpy as np
import pytest

from repro.sensing.hive import BROOD_SETPOINT_C, HiveMicroclimate
from repro.sensing.traces import Trace
from repro.util.units import DAY, HOUR


def ambient(mean=12.0, amplitude=6.0, duration=2 * DAY, step=300.0):
    n = int(duration / step)
    t = np.arange(n) * step
    vals = mean + amplitude * np.cos(2 * np.pi * (t - 15 * HOUR) / DAY)
    return Trace("ambient", 0.0, step, vals)


class TestHiveMicroclimate:
    def test_strong_colony_regulates_to_setpoint(self):
        hive = HiveMicroclimate(colony_strength=1.0)
        inside = hive.simulate(ambient(), seed=0)
        # After settling, the brood nest sits near 35 degC.
        settled = inside.values[len(inside) // 2 :]
        assert settled.mean() == pytest.approx(BROOD_SETPOINT_C, abs=1.5)
        assert settled.std() < 1.0

    def test_empty_hive_tracks_ambient(self):
        # The paper's Figure 2a trace predates the colony: inside follows
        # outside through the box's thermal lag.
        hive = HiveMicroclimate(colony_strength=0.0)
        amb = ambient()
        inside = hive.simulate(amb, seed=0)
        settled = slice(len(inside) // 2, None)
        assert inside.values[settled].mean() == pytest.approx(amb.values[settled].mean(), abs=1.5)
        # Lag damps the swing.
        assert inside.values[settled].std() < amb.values[settled].std()

    def test_partial_colony_between_regimes(self):
        amb = ambient()
        weak = HiveMicroclimate(colony_strength=0.3).simulate(amb, seed=0)
        strong = HiveMicroclimate(colony_strength=1.0).simulate(amb, seed=0)
        half = len(amb) // 2
        assert amb.values[half:].mean() < weak.values[half:].mean() < strong.values[half:].mean()

    def test_humidity_strong_colony_near_60(self):
        hive = HiveMicroclimate(colony_strength=1.0)
        amb = ambient()
        inside_t = hive.simulate(amb, seed=0)
        amb_h = Trace("h", 0.0, amb.step, np.full(len(amb), 85.0))
        hum = hive.humidity(inside_t, amb_h, seed=0)
        assert hum.values.mean() == pytest.approx(60.0, abs=3.0)

    def test_humidity_empty_hive_tracks_ambient(self):
        hive = HiveMicroclimate(colony_strength=0.0)
        amb = ambient()
        inside_t = hive.simulate(amb, seed=0)
        amb_h = Trace("h", 0.0, amb.step, np.full(len(amb), 85.0))
        hum = hive.humidity(inside_t, amb_h, seed=0)
        assert hum.values.mean() == pytest.approx(85.0, abs=3.0)

    def test_misaligned_traces_rejected(self):
        hive = HiveMicroclimate()
        amb = ambient()
        short = Trace("h", 0.0, amb.step, np.full(3, 50.0))
        with pytest.raises(ValueError):
            hive.humidity(hive.simulate(amb, seed=0), short)

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            HiveMicroclimate().simulate(Trace("a", 0.0, 60.0, np.array([1.0])))
