"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.sensing.traces import Trace, resample


def make(values, step=60.0, start=0.0):
    return Trace("x", start, step, np.asarray(values, dtype=float))


class TestTrace:
    def test_times(self):
        tr = make([1, 2, 3], step=10.0, start=5.0)
        assert tr.times.tolist() == [5.0, 15.0, 25.0]
        assert tr.end == 25.0

    def test_interpolation(self):
        tr = make([0.0, 10.0], step=10.0)
        assert tr.at(5.0) == pytest.approx(5.0)

    def test_interpolation_clamps(self):
        tr = make([1.0, 2.0], step=10.0)
        assert tr.at(-100.0) == 1.0
        assert tr.at(100.0) == 2.0

    def test_window(self):
        tr = make(range(10), step=1.0)
        w = tr.window(3.0, 6.0)
        assert w.values.tolist() == [3.0, 4.0, 5.0, 6.0]
        assert w.start == 3.0

    def test_window_outside_raises(self):
        tr = make([1, 2], step=1.0)
        with pytest.raises(ValueError):
            tr.window(100.0, 200.0)

    def test_window_reversed_raises(self):
        tr = make([1, 2], step=1.0)
        with pytest.raises(ValueError):
            tr.window(2.0, 1.0)

    def test_map(self):
        tr = make([1.0, 2.0])
        doubled = tr.map(lambda v: v * 2, name="y")
        assert doubled.values.tolist() == [2.0, 4.0]
        assert doubled.name == "y"

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Trace("x", 0.0, 1.0, np.zeros((2, 2)))

    def test_rejects_zero_step(self):
        with pytest.raises(ValueError):
            Trace("x", 0.0, 0.0, np.zeros(3))


class TestResample:
    def test_downsample(self):
        tr = make(range(11), step=1.0)
        r = resample(tr, 2.0)
        assert r.values.tolist() == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_upsample_interpolates(self):
        tr = make([0.0, 10.0], step=10.0)
        r = resample(tr, 5.0)
        assert r.values.tolist() == [0.0, 5.0, 10.0]

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            resample(make([1.0]), 1.0)
