"""Tests for the synthetic weather generator."""

import numpy as np
import pytest

from repro.sensing.weather import WeatherModel
from repro.util.units import DAY, HOUR


@pytest.fixture(scope="module")
def week():
    return WeatherModel().generate(duration=7 * DAY, step=300.0, seed=2)


class TestWeatherTrace:
    def test_aligned_traces(self, week):
        n = len(week.temperature_c)
        assert len(week.humidity_pct) == n
        assert len(week.cloud_cover) == n
        assert len(week.irradiance) == n

    def test_reproducible(self):
        a = WeatherModel().generate(duration=DAY, step=300.0, seed=9)
        b = WeatherModel().generate(duration=DAY, step=300.0, seed=9)
        np.testing.assert_array_equal(a.temperature_c.values, b.temperature_c.values)

    def test_seeds_differ(self):
        a = WeatherModel().generate(duration=DAY, step=300.0, seed=1)
        b = WeatherModel().generate(duration=DAY, step=300.0, seed=2)
        assert not np.array_equal(a.temperature_c.values, b.temperature_c.values)

    def test_temperature_plausible(self, week):
        vals = week.temperature_c.values
        assert vals.mean() == pytest.approx(14.0, abs=3.0)
        assert vals.std() > 1.0  # diurnal swing present
        assert np.all(vals > -20) and np.all(vals < 50)

    def test_diurnal_cycle_warmest_afternoon(self, week):
        tod = week.times % DAY
        afternoon = week.temperature_c.values[(tod > 13 * HOUR) & (tod < 17 * HOUR)]
        predawn = week.temperature_c.values[(tod > 3 * HOUR) & (tod < 6 * HOUR)]
        assert afternoon.mean() > predawn.mean() + 3.0

    def test_cloud_cover_bounded(self, week):
        c = week.cloud_cover.values
        assert np.all(c >= 0.0) and np.all(c <= 1.0)

    def test_irradiance_zero_at_night(self, week):
        tod = week.times % DAY
        night = week.irradiance.values[(tod < 5 * HOUR)]
        assert np.all(night == 0.0)

    def test_irradiance_positive_at_noon(self, week):
        tod = week.times % DAY
        noon = week.irradiance.values[(tod > 12 * HOUR) & (tod < 14 * HOUR)]
        assert noon.mean() > 200.0

    def test_cloud_reduces_irradiance(self):
        sunny = WeatherModel(cloudiness=0.05).generate(duration=2 * DAY, step=300.0, seed=4)
        overcast = WeatherModel(cloudiness=0.9).generate(duration=2 * DAY, step=300.0, seed=4)
        assert overcast.irradiance.values.sum() < sunny.irradiance.values.sum()

    def test_humidity_bounded(self, week):
        h = week.humidity_pct.values
        assert np.all(h >= 20.0) and np.all(h <= 100.0)

    def test_invalid_daylight_window(self):
        with pytest.raises(ValueError):
            WeatherModel(sunrise_s=10 * HOUR, sunset_s=9 * HOUR)
