"""Tests for sensor models."""

import numpy as np
import pytest

from repro.devices.sensors import Camera, CurrentSensor, Microphone, TemperatureHumiditySensor
from repro.sensing.traces import Trace


class TestTemperatureHumidity:
    def test_read_near_trace_value(self):
        temp = Trace("t", 0.0, 60.0, np.full(10, 35.0))
        hum = Trace("h", 0.0, 60.0, np.full(10, 60.0))
        sensor = TemperatureHumiditySensor()
        t, h = sensor.read(temp, hum, time=300.0, seed=1)
        assert t == pytest.approx(35.0, abs=1.0)
        assert h == pytest.approx(60.0, abs=6.0)

    def test_humidity_clipped(self):
        temp = Trace("t", 0.0, 60.0, np.full(5, 20.0))
        hum = Trace("h", 0.0, 60.0, np.full(5, 100.0))
        sensor = TemperatureHumiditySensor()
        for seed in range(10):
            _, h = sensor.read(temp, hum, 60.0, seed=seed)
            assert h <= 100.0

    def test_acquisition_energy_tiny(self):
        assert TemperatureHumiditySensor().acquisition_energy < 0.01


class TestMicrophone:
    def test_payload_matches_paper_sample(self):
        # 10 s at 22 050 Hz, 16-bit mono: 441 000 bytes.
        mic = Microphone(duration_s=10.0, sample_rate=22050)
        assert mic.payload_bytes == 441_000

    def test_record_produces_audio(self):
        from repro.audio.synth import HiveSoundSynthesizer

        mic = Microphone(duration_s=0.5)
        clip = mic.record(HiveSoundSynthesizer(), queen_present=True, seed=0)
        assert clip.shape == (int(0.5 * 22050),)
        assert np.abs(clip).max() <= 1.0


class TestCamera:
    def test_payload_scales_with_burst(self):
        one = Camera(n_images=1)
        five = Camera(n_images=5)
        assert five.payload_bytes == 5 * one.payload_bytes

    def test_paper_configuration(self):
        cam = Camera()  # 800x600, 5 images over 5 s
        assert cam.width == 800 and cam.height == 600 and cam.n_images == 5


class TestCurrentSensor:
    def test_measures_power(self):
        sensor = CurrentSensor()
        measured = sensor.read_power(2.14, seed=3)
        assert measured == pytest.approx(2.14, abs=0.3)

    def test_clips_at_full_scale(self):
        sensor = CurrentSensor(full_scale_a=5.0, noise_a=0.0)
        assert sensor.read_power(100.0, volts=5.0) == pytest.approx(25.0)
