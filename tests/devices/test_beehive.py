"""Tests for the composed SmartBeehive device."""

import numpy as np
import pytest

from repro.devices.beehive import SmartBeehive
from repro.network.link import LinkModel
from repro.sensing.traces import Trace
from repro.util.units import MINUTE


@pytest.fixture
def env():
    n = 200
    temp = Trace("t", 0.0, 60.0, np.full(n, 34.5))
    hum = Trace("h", 0.0, 60.0, np.full(n, 60.0))
    return temp, hum


def make_hive(env, **kwargs):
    temp, hum = env
    kwargs.setdefault("link", LinkModel(nominal_bps=1.25e6, cv=0.0, handshake_s=1.5))
    return SmartBeehive(temp, hum, seed=7, **kwargs)


class TestRunCycle:
    def test_payload_contents(self, env):
        hive = make_hive(env)
        payload = hive.run_cycle(0.0, audio_duration=0.5)
        assert payload.temperature_c == pytest.approx(34.5, abs=1.0)
        assert payload.humidity_pct == pytest.approx(60.0, abs=6.0)
        assert len(payload.audio_clips) == 3
        assert payload.n_images == 5
        assert payload.audio_seconds == pytest.approx(1.5)

    def test_payload_bytes_match_sensors(self, env):
        hive = make_hive(env)
        payload = hive.run_cycle(0.0, audio_duration=0.5)
        expected = 3 * 441_000 + hive.camera.payload_bytes + 16
        assert payload.payload_bytes == expected

    def test_cycles_accumulate(self, env):
        hive = make_hive(env)
        hive.run_cycle(0.0, audio_duration=0.2)
        hive.run_cycle(10 * MINUTE, audio_duration=0.2)
        assert len(hive.payloads) == 2
        assert hive.recorder.cycles_completed == 2

    def test_cycle_energy_near_calibrated_profile(self, env):
        """The composed device's per-cycle energy agrees with the Table II
        edge+cloud client within the upload-time stochasticity."""
        hive = make_hive(env)
        hive.run_cycle(0.0, audio_duration=0.2)
        hive.recorder.sleep_until(300.0)
        hive.recorder.finish(300.0)
        from repro.core.routines import EDGE_CLOUD_SVM

        assert hive.recorder.account.total == pytest.approx(
            EDGE_CLOUD_SVM.client.cycle_energy, rel=0.03
        )

    def test_deterministic_given_seed(self, env):
        a = make_hive(env)
        b = make_hive(env)
        pa = a.run_cycle(0.0, audio_duration=0.3)
        pb = b.run_cycle(0.0, audio_duration=0.3)
        np.testing.assert_array_equal(pa.audio_clips[0], pb.audio_clips[0])
        assert pa.upload_duration_s == pb.upload_duration_s

    def test_cycles_differ(self, env):
        hive = make_hive(env)
        p0 = hive.run_cycle(0.0, audio_duration=0.3)
        p1 = hive.run_cycle(600.0, audio_duration=0.3)
        assert not np.array_equal(p0.audio_clips[0], p1.audio_clips[0])

    def test_edge_classifier_runs_and_charges(self, env):
        hive = make_hive(env, queen_present=True)
        payload = hive.run_cycle(0.0, audio_duration=0.3, classifier=lambda clip: True)
        assert payload.queen_detected is True
        assert hive.recorder.account.category_total("queen_detection_svm") == pytest.approx(98.9)

    def test_no_classifier_leaves_none(self, env):
        hive = make_hive(env)
        assert hive.run_cycle(0.0, audio_duration=0.2).queen_detected is None

    def test_finish_and_total_energy(self, env):
        hive = make_hive(env)
        hive.run_cycle(0.0, audio_duration=0.2)
        hive.finish(300.0)
        # Monitor idles at 0.45 W for ~300 s plus its sampling excursion.
        assert hive.monitor.account.total == pytest.approx(0.45 * 299.5 + 0.85 * 0.5, rel=0.02)
        assert hive.total_energy_j > hive.recorder.account.total


class TestEndToEndDetection:
    def test_trained_svm_classifies_live_hive(self, env):
        """Full-system loop: a classifier trained on the synthetic corpus
        deployed onto a live SmartBeehive's microphone stream."""
        from repro.audio.dataset import DatasetSpec, QueenDataset
        from repro.dsp.features import mel_statistics
        from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
        from repro.ml.scaler import StandardScaler
        from repro.ml.svm import SVC

        mel = MelSpectrogram(SpectrogramConfig())
        ds = QueenDataset(DatasetSpec.small(n_samples=80, clip_duration=1.0, seed=3))
        X, y = ds.features(lambda clip: mel_statistics(mel.db(clip)))
        scaler = StandardScaler()
        clf = SVC(C=20.0, gamma="scale", seed=3).fit(scaler.fit_transform(X), y)

        def classify(clip):
            feats = mel_statistics(mel.db(clip))[None, :]
            return bool(clf.predict(scaler.transform(feats))[0] == 1)

        detections = []
        for present in (True, False):
            hive = make_hive(env, queen_present=present)
            payload = hive.run_cycle(0.0, audio_duration=1.0, classifier=classify)
            detections.append(payload.queen_detected)
        assert detections == [True, False]
