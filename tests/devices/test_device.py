"""Tests for device state machines and their ledgers."""

import numpy as np
import pytest

from repro.devices.device import AlwaysOnDevice, DeviceError, DutyCycledDevice
from repro.devices.specs import CLOUD_SERVER_I7_RTX2070, RASPBERRY_PI_3B_PLUS
from repro.energy.power import TaskPower


def table1_svm_tasks():
    return [
        TaskPower("wake_collect", 64.0, measured_energy=131.8),
        TaskPower("queen_detection_svm", 46.1, measured_energy=98.9),
        TaskPower("send_results", 1.5, measured_energy=3.0),
        TaskPower("shutdown", 9.9, measured_energy=21.0),
    ]


class TestDutyCycledDevice:
    def test_one_cycle_reproduces_table1(self):
        dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS)
        dev.sleep_until(178.5)
        end = dev.run_routine(178.5, table1_svm_tasks())
        assert end == pytest.approx(300.0)
        dev.finish(300.0)
        # Table I total: 366.3 J.
        assert dev.account.total == pytest.approx(366.3, rel=0.002)
        assert dev.account.category_total("queen_detection_svm") == pytest.approx(98.9)
        assert dev.account.category_total("sleep") == pytest.approx(111.6, rel=0.001)

    def test_routine_while_awake_rejected(self):
        dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS)
        tasks = [TaskPower("t", 500.0, watts=1.0)]
        dev.run_routine(0.0, [TaskPower("wake_collect", 10.0, watts=2.0)])
        # Device is asleep again; but a wake in the past must fail.
        with pytest.raises(DeviceError):
            dev.run_routine(5.0, tasks)

    def test_cycles_counted(self):
        dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS)
        t = 0.0
        for _ in range(3):
            t = dev.run_routine(t, [TaskPower("wake_collect", 10.0, watts=2.0)])
            t += 50.0
            dev.sleep_until(t)
        assert dev.cycles_completed == 3

    def test_power_trace_shows_spikes(self):
        dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS)
        dev.run_routine(0.0, [TaskPower("wake_collect", 60.0, watts=2.1)])
        dev.sleep_until(600.0)
        dev.run_routine(600.0, [TaskPower("wake_collect", 60.0, watts=2.1)])
        dev.finish(1200.0)
        times, watts = dev.power_trace(step=10.0)
        assert watts.max() > 2.0
        assert watts.min() == pytest.approx(0.625)
        # Two distinct high-power episodes.
        above = watts > 1.0
        rising = int(np.sum(above[1:] & ~above[:-1]) + above[0])
        assert rising == 2

    def test_boot_and_shutdown_phases(self):
        dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS)
        end = dev.run_routine(0.0, [TaskPower("wake_collect", 10.0, watts=2.0)],
                              boot_duration=5.0, shutdown_duration=3.0)
        assert end == pytest.approx(18.0)
        assert dev.account.category_total("boot") == pytest.approx(5.0 * RASPBERRY_PI_3B_PLUS.watts("boot"))

    def test_unknown_task_maps_to_active_state(self):
        dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS)
        dev.run_routine(0.0, [TaskPower("exotic_task", 10.0, watts=1.7)])
        dev.finish(20.0)
        # The ledger attributes the task's own power under its own name.
        assert dev.account.category_total("exotic_task") == pytest.approx(17.0)


class TestAlwaysOnDevice:
    def test_idle_baseline(self):
        dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070)
        dev.finish(300.0)
        assert dev.account.total == pytest.approx(44.6 * 300.0)

    def test_excursion_charges_state_power(self):
        dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070)
        end = dev.excursion(100.0, "receive", 15.0)
        assert end == 115.0
        dev.finish(300.0)
        expected = 44.6 * 285.0 + 68.8 * 15.0
        assert dev.account.total == pytest.approx(expected)

    def test_excursion_override_category(self):
        dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070)
        dev.excursion(0.0, "receive", 15.0, override=("receive_audio", 68.8))
        dev.finish(20.0)
        assert dev.account.category_total("receive_audio") == pytest.approx(1032.0)

    def test_time_must_advance(self):
        dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070)
        dev.excursion(10.0, "receive", 5.0)
        with pytest.raises(DeviceError):
            dev.excursion(12.0, "receive", 1.0)

    def test_unknown_state_rejected(self):
        dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070)
        with pytest.raises(DeviceError):
            dev.excursion(0.0, "hyperdrive", 1.0)
