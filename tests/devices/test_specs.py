"""Tests for the hardware spec catalog."""

import pytest

from repro.devices.specs import (
    CLOUD_SERVER_I7_RTX2070,
    RASPBERRY_PI_3B_PLUS,
    RASPBERRY_PI_ZERO_WH,
    catalog,
)


class TestCatalog:
    def test_lookup_by_name(self):
        assert catalog("raspberry-pi-3b+") is RASPBERRY_PI_3B_PLUS

    def test_full_catalog(self):
        all_specs = catalog()
        assert len(all_specs) == 3

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="raspberry-pi-3b"):
            catalog("esp32")


class TestCalibratedPowers:
    def test_pi3_sleep_matches_tables(self):
        # Tables I/II imply 0.625 W (111.6 J / 178.5 s).
        assert RASPBERRY_PI_3B_PLUS.watts("sleep") == pytest.approx(0.625)

    def test_pi3_active_matches_section4(self):
        assert RASPBERRY_PI_3B_PLUS.watts("active") == pytest.approx(2.14)

    def test_server_idle_from_table2(self):
        # 9415 J over 211.1 s.
        assert CLOUD_SERVER_I7_RTX2070.watts("idle") == pytest.approx(9415 / 211.1, rel=0.01)

    def test_server_receive_from_table2(self):
        # 1032 J over 15 s.
        assert CLOUD_SERVER_I7_RTX2070.watts("receive") == pytest.approx(1032 / 15.0, rel=0.01)

    def test_pi_zero_draws_less_than_pi3(self):
        assert RASPBERRY_PI_ZERO_WH.watts("idle") < RASPBERRY_PI_3B_PLUS.watts("active")

    def test_unknown_state_error_lists_known(self):
        with pytest.raises(KeyError, match="sleep"):
            RASPBERRY_PI_3B_PLUS.watts("warp")

    def test_power_model_materialization(self):
        pm = RASPBERRY_PI_3B_PLUS.power_model()
        assert pm.watts("sleep") == RASPBERRY_PI_3B_PLUS.watts("sleep")
