"""Tests for the ResNet builder and BasicBlock."""

import numpy as np
import pytest

from repro.ml.nn.resnet import BasicBlock, ResNet, resnet18, small_cnn


class TestBasicBlock:
    def test_identity_shortcut_shape(self, rng):
        block = BasicBlock(4, 4, stride=1, seed=0)
        out = block.forward(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 4, 8, 8)
        assert block.shortcut is None

    def test_projection_shortcut_on_stride(self, rng):
        block = BasicBlock(4, 8, stride=2, seed=0)
        out = block.forward(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 8, 4, 4)
        assert block.shortcut is not None

    def test_gradient_flows_through_both_branches(self, rng):
        block = BasicBlock(2, 2, stride=1, seed=0)
        x = rng.normal(size=(2, 2, 4, 4))
        out = block.forward(x, training=True)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.any(grad != 0)

    def test_finite_difference_gradient(self, rng):
        block = BasicBlock(2, 3, stride=2, seed=0)
        x = rng.normal(size=(1, 2, 6, 6))
        w = np.random.default_rng(0).normal(size=block.forward(x, training=True).shape)
        block.forward(x, training=True)
        grad = block.backward(w)
        eps = 1e-6
        flat = x.ravel()
        for i in np.random.default_rng(1).choice(flat.size, size=8, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            fp = float(np.sum(block.forward(x, training=True) * w))
            flat[i] = orig - eps
            fm = float(np.sum(block.forward(x, training=True) * w))
            flat[i] = orig
            assert grad.ravel()[i] == pytest.approx((fp - fm) / (2 * eps), abs=1e-4)


class TestResNet18:
    def test_output_shape(self, rng):
        model = resnet18(num_classes=2, in_channels=1, width=0.125, seed=0)
        logits = model.forward(rng.normal(size=(2, 1, 64, 64)))
        assert logits.shape == (2, 2)

    def test_layer_count_matches_resnet18(self):
        """[2,2,2,2] BasicBlocks -> 8 blocks, 17 convs + 3 projections + head."""
        model = resnet18(width=0.0625, seed=0)
        from repro.ml.nn.layers import Conv2d

        convs = [l for l in _walk_layers(model.backbone) if isinstance(l, Conv2d)]
        # stem + 16 block convs + 3 projection convs = 20.
        assert len(convs) == 20

    def test_width_scales_channels(self):
        assert resnet18(width=1.0).feature_channels == 512
        assert resnet18(width=0.5).feature_channels == 256

    def test_parameter_count_full_width(self):
        """Full ResNet-18 has ~11.2 M parameters (2-class, 1-channel stem)."""
        model = resnet18(num_classes=2, in_channels=1, width=1.0, seed=0)
        n_params = sum(p.data.size for p in model.parameters())
        assert 10_500_000 < n_params < 11_500_000

    def test_predict_batched(self, rng):
        model = resnet18(num_classes=2, in_channels=1, width=0.0625, seed=0)
        preds = model.predict(rng.normal(size=(10, 1, 32, 32)), batch_size=4)
        assert preds.shape == (10,)
        assert set(preds.tolist()) <= {0, 1}

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(1, 1, 32, 32))
        a = resnet18(width=0.0625, seed=3).forward(x)
        b = resnet18(width=0.0625, seed=3).forward(x)
        np.testing.assert_array_equal(a, b)


class TestSmallCnn:
    def test_forward_and_backward(self, rng):
        model = small_cnn(seed=0)
        x = rng.normal(size=(4, 1, 28, 28))
        logits = model.forward(x, training=True)
        assert logits.shape == (4, 2)
        grad = model.backward(np.ones_like(logits) / 4)
        assert grad.shape == x.shape


def _walk_layers(module):
    from repro.ml.nn.layers import Sequential
    from repro.ml.nn.resnet import BasicBlock

    if isinstance(module, Sequential):
        for layer in module.layers:
            yield from _walk_layers(layer)
    elif isinstance(module, BasicBlock):
        yield module.conv1
        yield module.bn1
        yield module.conv2
        yield module.bn2
        if module.shortcut is not None:
            yield from _walk_layers(module.shortcut)
    else:
        yield module
