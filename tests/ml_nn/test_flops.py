"""Tests for FLOP counting and the inference-cost model."""

import numpy as np
import pytest

from repro.ml.nn.flops import InferenceCostModel, count_flops
from repro.ml.nn.layers import Conv2d, Linear, ReLU, Sequential
from repro.ml.nn.resnet import resnet18, small_cnn


class TestCountFlops:
    def test_conv_formula(self):
        conv = Conv2d(3, 8, 3, stride=1, padding=1, bias=False, seed=0)
        flops = count_flops(conv, (3, 10, 10))
        assert flops == 2 * 8 * 10 * 10 * 3 * 9

    def test_conv_bias_adds(self):
        with_bias = count_flops(Conv2d(1, 4, 3, padding=1, seed=0), (1, 8, 8))
        without = count_flops(Conv2d(1, 4, 3, padding=1, bias=False, seed=0), (1, 8, 8))
        assert with_bias == without + 4 * 64

    def test_linear_formula(self):
        assert count_flops(Linear(128, 10, bias=False, seed=0), (128, 1, 1)) == 2 * 128 * 10

    def test_sequential_sums(self):
        conv = Conv2d(1, 2, 3, padding=1, seed=0)
        net = Sequential([conv, ReLU()])
        assert count_flops(net, (1, 8, 8)) == count_flops(conv, (1, 8, 8)) + 2 * 64

    def test_resnet18_scale(self):
        """Full-width ResNet-18 at 100x100 grayscale is ~0.5-1.5 GFLOPs."""
        model = resnet18(in_channels=1, width=1.0, seed=0)
        flops = count_flops(model, (1, 100, 100))
        assert 3e8 < flops < 2e9

    def test_flops_scale_with_pixels(self):
        """Convolution FLOPs grow ~linearly with pixel count (quadratic in
        side length) — the mechanism behind Figure 5's energy curve."""
        model = resnet18(in_channels=1, width=0.25, seed=0)
        f100 = count_flops(model, (1, 100, 100))
        f200 = count_flops(model, (1, 200, 200))
        assert f200 / f100 == pytest.approx(4.0, rel=0.25)

    def test_small_cnn_counts(self):
        assert count_flops(small_cnn(seed=0), (1, 28, 28)) > 0

    def test_unsupported_module(self):
        with pytest.raises(TypeError):
            count_flops(object(), (1, 8, 8))


class TestInferenceCostModel:
    def test_calibration_matches_anchor(self):
        """Calibrated against the paper's 100x100 anchor: 37.6 s / 94.8 J."""
        model = resnet18(in_channels=1, seed=0)
        flops = count_flops(model, (1, 100, 100))
        cost = InferenceCostModel.calibrate(
            anchor_flops=flops, anchor_seconds=37.6, active_watts=94.8 / 37.6, fixed_overhead_s=5.0
        )
        t, e = cost.cost(flops)
        assert t == pytest.approx(37.6)
        assert e == pytest.approx(94.8)

    def test_time_affine_in_flops(self):
        cost = InferenceCostModel(active_watts=2.5, effective_flops_per_s=1e9, fixed_overhead_s=1.0)
        assert cost.seconds(0) == 1.0
        assert cost.seconds(2e9) == pytest.approx(3.0)

    def test_energy_proportional_to_time(self):
        cost = InferenceCostModel(active_watts=2.0, effective_flops_per_s=1e9)
        assert cost.joules(1e9) == pytest.approx(2.0)

    def test_overhead_must_be_below_anchor(self):
        with pytest.raises(ValueError):
            InferenceCostModel.calibrate(1e9, 10.0, 2.0, fixed_overhead_s=10.0)

    def test_negative_flops_rejected(self):
        cost = InferenceCostModel(active_watts=1.0, effective_flops_per_s=1e9)
        with pytest.raises(ValueError):
            cost.seconds(-1.0)
