"""Tests for SGD."""

import numpy as np
import pytest

from repro.ml.nn.layers import Parameter
from repro.ml.nn.optim import SGD


def quadratic_param(x0=5.0):
    return Parameter(np.array([x0]), "x")


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            opt.zero_grad()
            p.grad[:] = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                p.grad[:] = 2 * p.data
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.zero_grad()  # zero loss gradient; only decay acts
        opt.step()
        assert abs(p.data[0]) < 1.0

    def test_zero_grad(self):
        p = quadratic_param()
        p.grad[:] = 3.0
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad[0] == 0.0

    def test_set_lr(self):
        opt = SGD([quadratic_param()], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([quadratic_param()], momentum=1.0)
