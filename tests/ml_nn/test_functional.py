"""Tests for im2col/col2im, softmax and cross-entropy."""

import numpy as np
import pytest

from repro.ml.nn.functional import (
    col2im,
    conv_output_size,
    cross_entropy_loss,
    im2col,
    softmax,
)


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(7, 7, 2, 3) == 4  # ResNet stem on 7px input

    def test_too_small(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 3 * 9)

    def test_patch_content(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 2, 2, 2, 0)
        assert (oh, ow) == (2, 2)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[3], [10, 11, 14, 15])

    def test_matches_direct_convolution(self, rng):
        """im2col @ W.T equals a naive direct convolution."""
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        out = (cols @ w.reshape(3, -1).T).reshape(1, oh, ow, 3).transpose(0, 3, 1, 2)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((1, 3, 6, 6))
        for o in range(3):
            for i in range(6):
                for j in range(6):
                    naive[0, o, i, j] = np.sum(xp[0, :, i : i + 3, j : j + 3] * w[o])
        np.testing.assert_allclose(out, naive, rtol=1e-10)

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 7, 7))
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im(y, x.shape, 3, 3, 2, 1))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_validation(self):
        with pytest.raises(ValueError):
            col2im(np.zeros((4, 9)), (1, 1, 8, 8), 3, 3, 1, 1)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(5, 4)), axis=1)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(p, [[0.5, 0.5]])

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-12)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 3))
        loss, _ = cross_entropy_loss(logits, np.array([0, 1, 2, 0]))
        assert loss == pytest.approx(np.log(3.0))

    def test_gradient_finite_difference(self, rng):
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 0, 3])
        _, grad = cross_entropy_loss(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (cross_entropy_loss(lp, targets)[0] - cross_entropy_loss(lm, targets)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-6)

    def test_target_out_of_range(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0, 3]))

    def test_requires_2d_logits(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros(3), np.array([0]))
