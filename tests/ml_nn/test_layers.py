"""Layer tests: shapes plus finite-difference gradient checks.

The gradient checker perturbs inputs and parameters and compares the
numerical derivative of a scalar loss (sum of outputs weighted by a fixed
random matrix) against the analytic backward pass.
"""

import numpy as np
import pytest

from repro.ml.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)


def check_input_gradient(layer, x, training=True, atol=1e-5):
    """Finite-difference check of dLoss/dx for loss = sum(W ⊙ forward(x))."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=training)
    w = rng.normal(size=out.shape)
    grad_analytic = layer.backward(w)
    eps = 1e-6
    flat = x.ravel()
    idx = rng.choice(flat.size, size=min(20, flat.size), replace=False)
    for i in idx:
        orig = flat[i]
        flat[i] = orig + eps
        fp = float(np.sum(layer.forward(x, training=training) * w))
        flat[i] = orig - eps
        fm = float(np.sum(layer.forward(x, training=training) * w))
        flat[i] = orig
        num = (fp - fm) / (2 * eps)
        assert grad_analytic.ravel()[i] == pytest.approx(num, abs=atol), f"input grad at {i}"


def check_param_gradient(layer, x, training=True, atol=1e-5):
    """Finite-difference check of dLoss/dtheta for every parameter."""
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=training)
    w = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.forward(x, training=training)
    layer.backward(w)
    eps = 1e-6
    for p in layer.parameters():
        flat = p.data.ravel()
        gflat = p.grad.ravel()
        idx = rng.choice(flat.size, size=min(10, flat.size), replace=False)
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            fp = float(np.sum(layer.forward(x, training=training) * w))
            flat[i] = orig - eps
            fm = float(np.sum(layer.forward(x, training=training) * w))
            flat[i] = orig
            num = (fp - fm) / (2 * eps)
            assert gflat[i] == pytest.approx(num, abs=atol), f"{p.name} grad at {i}"


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, seed=0)
        out = conv.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 8, 8, 8)

    def test_input_gradient(self, rng):
        conv = Conv2d(2, 3, 3, stride=1, padding=1, seed=0)
        check_input_gradient(conv, rng.normal(size=(2, 2, 5, 5)))

    def test_param_gradient(self, rng):
        conv = Conv2d(2, 3, 3, stride=2, padding=1, seed=0)
        check_param_gradient(conv, rng.normal(size=(2, 2, 6, 6)))

    def test_no_bias(self, rng):
        conv = Conv2d(1, 2, 3, bias=False, seed=0)
        assert len(conv.parameters()) == 1

    def test_channel_mismatch(self, rng):
        conv = Conv2d(3, 8, 3)
        with pytest.raises(ValueError):
            conv.forward(rng.normal(size=(1, 2, 8, 8)))

    def test_he_initialization_scale(self):
        conv = Conv2d(16, 32, 3, seed=0)
        fan_in = 16 * 9
        assert conv.weight.data.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.1)


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        out = bn.forward(x, training=True)
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(4), abs=1e-9)
        assert out.std(axis=(0, 2, 3)) == pytest.approx(np.ones(4), rel=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(5.0, 1.0, size=(16, 2, 4, 4))
        for _ in range(20):
            bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        assert abs(out.mean()) < 0.2

    def test_input_gradient_training(self, rng):
        bn = BatchNorm2d(3)
        check_input_gradient(bn, rng.normal(size=(4, 3, 3, 3)), training=True, atol=1e-4)

    def test_param_gradient(self, rng):
        bn = BatchNorm2d(3)
        check_param_gradient(bn, rng.normal(size=(4, 3, 3, 3)), training=True, atol=1e-4)

    def test_eval_gradient(self, rng):
        bn = BatchNorm2d(2)
        bn.forward(rng.normal(size=(8, 2, 4, 4)), training=True)  # seed running stats
        check_input_gradient(bn, rng.normal(size=(4, 2, 3, 3)), training=False)


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_gradient(self, rng):
        x = rng.normal(size=(3, 4)) + 0.1  # keep away from the kink
        check_input_gradient(ReLU(), x)


class TestMaxPool2d:
    def test_shape(self, rng):
        pool = MaxPool2d(2)
        out = pool.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 3, 4, 4)

    def test_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_resnet_stem_pool(self, rng):
        pool = MaxPool2d(3, stride=2, padding=1)
        out = pool.forward(rng.normal(size=(1, 4, 50, 50)))
        assert out.shape == (1, 4, 25, 25)

    def test_gradient(self, rng):
        pool = MaxPool2d(2)
        check_input_gradient(pool, rng.normal(size=(2, 2, 6, 6)))

    def test_gradient_routes_to_argmax(self):
        x = np.array([[[[1.0, 5.0], [2.0, 3.0]]]])
        pool = MaxPool2d(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        np.testing.assert_array_equal(grad, [[[[0, 1], [0, 0]]]])


class TestGlobalAvgPoolFlattenLinear:
    def test_gap(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = GlobalAvgPool2d().forward(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_gap_gradient(self, rng):
        check_input_gradient(GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))

    def test_flatten_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        f = Flatten()
        out = f.forward(x)
        assert out.shape == (2, 48)
        assert f.backward(out).shape == x.shape

    def test_linear_shapes(self, rng):
        lin = Linear(8, 3, seed=0)
        assert lin.forward(rng.normal(size=(5, 8))).shape == (5, 3)

    def test_linear_gradients(self, rng):
        lin = Linear(6, 4, seed=0)
        x = rng.normal(size=(3, 6))
        check_input_gradient(lin, x)
        check_param_gradient(lin, x)

    def test_linear_dim_check(self, rng):
        with pytest.raises(ValueError):
            Linear(8, 3).forward(rng.normal(size=(2, 7)))


class TestSequential:
    def test_chains(self, rng):
        net = Sequential([Conv2d(1, 2, 3, padding=1, seed=0), ReLU(), GlobalAvgPool2d(), ])
        out = net.forward(rng.normal(size=(2, 1, 6, 6)))
        assert out.shape == (2, 2)

    def test_gradient_through_chain(self, rng):
        net = Sequential([
            Conv2d(1, 2, 3, padding=1, seed=0),
            BatchNorm2d(2),
            ReLU(),
            GlobalAvgPool2d(),
        ])
        check_input_gradient(net, rng.normal(size=(2, 1, 5, 5)), atol=1e-4)

    def test_parameters_aggregated(self):
        net = Sequential([Conv2d(1, 2, 3, seed=0), BatchNorm2d(2), Linear(2, 2, seed=0)])
        assert len(net.parameters()) == 2 + 2 + 2
