"""Tests for the training loop."""

import numpy as np
import pytest

from repro.ml.nn.resnet import small_cnn
from repro.ml.nn.train import TrainConfig, Trainer


def easy_images(rng, n=40, size=12):
    """Class 1 has a bright square top-left; class 0 bottom-right."""
    X = rng.normal(0, 0.3, size=(n, 1, size, size))
    y = (np.arange(n) % 2).astype(int)
    half = size // 2
    for i in range(n):
        if y[i] == 1:
            X[i, 0, :half, :half] += 2.0
        else:
            X[i, 0, half:, half:] += 2.0
    return X, y


class TestTrainer:
    def test_learns_easy_task(self, rng):
        X, y = easy_images(rng)
        model = small_cnn(seed=0)
        trainer = Trainer(model, TrainConfig(epochs=6, lr=0.02, batch_size=8, seed=0))
        history = trainer.fit(X, y)
        assert history.train_accuracies[-1] >= 0.9
        assert history.losses[-1] < history.losses[0]

    def test_paper_defaults(self):
        cfg = TrainConfig()
        assert cfg.epochs == 4
        assert cfg.lr == 0.001

    def test_validation_tracking(self, rng):
        X, y = easy_images(rng, n=48)
        trainer = Trainer(small_cnn(seed=0), TrainConfig(epochs=2, lr=0.02, batch_size=8, seed=0))
        history = trainer.fit(X[:32], y[:32], X_val=X[32:], y_val=y[32:])
        assert len(history.val_accuracies) == 2

    def test_evaluate(self, rng):
        X, y = easy_images(rng)
        trainer = Trainer(small_cnn(seed=0), TrainConfig(epochs=5, lr=0.02, batch_size=8, seed=0))
        trainer.fit(X, y)
        assert trainer.evaluate(X, y) >= 0.85

    def test_reproducible(self, rng):
        X, y = easy_images(rng, n=24)
        h1 = Trainer(small_cnn(seed=1), TrainConfig(epochs=2, lr=0.01, seed=5)).fit(X, y)
        h2 = Trainer(small_cnn(seed=1), TrainConfig(epochs=2, lr=0.01, seed=5)).fit(X, y)
        assert h1.losses == h2.losses

    def test_input_validation(self, rng):
        trainer = Trainer(small_cnn(seed=0), TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(rng.normal(size=(4, 12, 12)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            trainer.fit(rng.normal(size=(4, 1, 12, 12)), np.zeros(3, dtype=int))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(lr=0.0)
