"""Tests for model weight serialization."""

import io

import numpy as np
import pytest

from repro.ml.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.ml.nn.resnet import resnet18, small_cnn
from repro.ml.nn.serialize import load_model, load_state_dict, save_model, state_dict


def mutate(model, rng):
    for p in model.parameters():
        p.data += rng.normal(size=p.data.shape)


class TestStateDict:
    def test_collects_all_parameters(self):
        model = small_cnn(seed=0)
        state = state_dict(model)
        n_state_params = sum(1 for k in state if not k.endswith(("running_mean", "running_var")))
        assert n_state_params == len(model.parameters())

    def test_includes_batchnorm_stats(self):
        model = Sequential([Conv2d(1, 2, 3, seed=0), BatchNorm2d(2)])
        state = state_dict(model)
        assert any(k.endswith("running_mean") for k in state)

    def test_keys_are_unique_paths(self):
        model = resnet18(width=0.0625, seed=0)
        state = state_dict(model)
        assert len(state) == len(set(state))


class TestRoundTrip:
    def test_save_load_roundtrip_in_memory(self, rng):
        model = small_cnn(seed=1)
        x = rng.normal(size=(2, 1, 16, 16))
        model.forward(x, training=True)  # move running stats off their init
        expected = model.forward(x, training=False)

        buf = io.BytesIO()
        save_model(model, buf)
        buf.seek(0)

        fresh = small_cnn(seed=99)  # different init
        assert not np.allclose(fresh.forward(x, training=False), expected)
        load_model(fresh, buf)
        np.testing.assert_allclose(fresh.forward(x, training=False), expected, atol=1e-12)

    def test_file_roundtrip(self, rng, tmp_path):
        model = small_cnn(seed=2)
        x = rng.normal(size=(1, 1, 12, 12))
        expected = model.forward(x, training=False)
        path = tmp_path / "weights.npz"
        save_model(model, str(path))
        fresh = small_cnn(seed=3)
        load_model(fresh, str(path))
        np.testing.assert_allclose(fresh.forward(x, training=False), expected, atol=1e-12)

    def test_resnet_roundtrip(self, rng):
        model = resnet18(width=0.0625, seed=4)
        buf = io.BytesIO()
        save_model(model, buf)
        buf.seek(0)
        fresh = resnet18(width=0.0625, seed=5)
        mutate(fresh, rng)
        load_model(fresh, buf)
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_array_equal(a.data, b.data)


class TestValidation:
    def test_architecture_mismatch_rejected(self):
        small = Sequential([Linear(4, 2, seed=0)])
        big = Sequential([Linear(4, 2, seed=0), ReLU(), Linear(2, 2, seed=0)])
        with pytest.raises(ValueError, match="state mismatch"):
            load_state_dict(big, state_dict(small))

    def test_shape_mismatch_rejected(self):
        a = Sequential([Linear(4, 2, seed=0)])
        b = Sequential([Linear(4, 3, seed=0)])
        state = state_dict(a)
        with pytest.raises(ValueError):
            load_state_dict(b, state)

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, __format__=np.array(99), junk=np.zeros(3))
        with pytest.raises(ValueError, match="format"):
            load_model(small_cnn(seed=0), str(path))
